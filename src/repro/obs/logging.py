"""Structured logging: the service's single logging path.

Every operational line the service emits — request completions,
failovers, worker rejoin/respawn, fault injections, drain transitions,
the one-shot kernel-tier fallback warning — is an *event*: a name from
:data:`EVENT_FIELDS` plus typed fields.  One :class:`StructuredLogger`
renders events to one of three sinks:

* **unconfigured** (the default): through the stdlib :mod:`logging`
  module, on the logger named per call site (``repro.service.router``,
  ``repro.kernels``, ...).  Libraries embedding the service keep their
  handler/caplog behaviour, and a bare process still prints warnings to
  stderr exactly as before;
* ``repro serve --log-format json`` — one JSON object per line
  (``sort_keys`` so lines are deterministic given their fields), to
  stderr or ``--log-file``;
* ``repro serve --log-format text`` — aligned ``key=value`` pairs, same
  destination choice.

:func:`validate_event` is the schema check: the obs test-suite and the
CI ``obs-smoke`` job run every emitted JSON line through it, so the log
stream is a *contract*, not prose.
"""

from __future__ import annotations

import json
import logging as _stdlib_logging
import threading
import time
from pathlib import Path
from typing import Any, IO, Mapping

__all__ = [
    "EVENT_FIELDS",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "validate_event",
]

#: Known events -> required fields (name -> accepted types).  ``event``,
#: ``ts`` and ``level`` are implicit on every record.
EVENT_FIELDS: dict[str, dict[str, tuple]] = {
    # One per answered request (any endpoint, worker and router alike).
    "request": {
        "trace": (str,),
        "endpoint": (str,),
        "status": (int,),
        "latency_ms": (int, float),
        "tenant": (str,),
    },
    # Router failover decisions (timeout or connection-level).
    "failover": {"worker": (int, str), "reason": (str,), "path": (str,)},
    # Supervisor: a benched-but-alive worker re-entered the ring.
    "rejoin": {"worker": (int, str), "reason": (str,)},
    # Supervisor: a dead worker respawned / a respawn attempt failed.
    "respawn": {"worker": (int, str), "restarts": (int,)},
    "respawn_failed": {"worker": (int, str), "attempt": (int,), "error": (str,)},
    # One per fault a FaultInjector actually fired.
    "fault_injected": {"site": (str,), "kind": (str,)},
    # Graceful-drain lifecycle of a server.
    "drain": {"stage": (str,)},
    # The kernel registry's one-shot degrade warning.
    "kernel_fallback": {"message": (str,)},
}

#: Default severity per event (overridable per call).
_EVENT_LEVELS = {
    "failover": "warning",
    "respawn_failed": "warning",
    "kernel_fallback": "warning",
}

_LEVELS = {
    "debug": _stdlib_logging.DEBUG,
    "info": _stdlib_logging.INFO,
    "warning": _stdlib_logging.WARNING,
    "error": _stdlib_logging.ERROR,
}


def _render_text(event: str, fields: Mapping[str, Any]) -> str:
    parts = [f"event={event}"]
    for key, value in fields.items():
        text = str(value)
        if " " in text or '"' in text:
            text = '"' + text.replace('"', r"\"") + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


class StructuredLogger:
    """Render events to one sink (stdlib logging, a stream, or a file)."""

    def __init__(
        self,
        fmt: str = "text",
        *,
        stream: IO[str] | None = None,
        path: Path | str | None = None,
    ) -> None:
        if fmt not in ("text", "json"):
            raise ValueError(f"log format must be 'text' or 'json', got {fmt!r}")
        self.fmt = fmt
        self._lock = threading.Lock()
        self._stream = stream
        self._path = Path(path) if path is not None else None
        self._file: IO[str] | None = None

    @property
    def configured(self) -> bool:
        """Whether events go to an explicit sink (vs stdlib logging)."""
        return self._stream is not None or self._path is not None

    def _sink(self) -> IO[str] | None:
        if self._stream is not None:
            return self._stream
        if self._path is not None:
            if self._file is None:
                # Line-buffered append: multiple worker processes may
                # share one file; whole-line writes interleave cleanly.
                self._file = open(self._path, "a", buffering=1, encoding="utf-8")
            return self._file
        return None

    def event(
        self,
        event: str,
        *,
        level: str | None = None,
        logger: str = "repro.obs",
        **fields: Any,
    ) -> None:
        """Emit one structured event (never raises into the caller)."""
        level = level or _EVENT_LEVELS.get(event, "info")
        sink = self._sink() if self.configured else None
        try:
            if sink is None:
                _stdlib_logging.getLogger(logger).log(
                    _LEVELS.get(level, _stdlib_logging.INFO),
                    "%s",
                    _render_text(event, fields),
                )
                return
            if self.fmt == "json":
                record = {"event": event, "ts": time.time(), "level": level, **fields}
                line = json.dumps(record, sort_keys=True, default=str)
            else:
                line = _render_text(event, dict(fields, ts=f"{time.time():.6f}", level=level))
            with self._lock:
                sink.write(line + "\n")
                sink.flush()
        except Exception:  # pragma: no cover - a broken sink must not 500 requests
            pass

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None


#: The process-wide logger; replaced by :func:`configure_logging`.
_logger = StructuredLogger()


def get_logger() -> StructuredLogger:
    return _logger


def configure_logging(
    log_format: str | None = None,
    log_file: Path | str | None = None,
    *,
    stream: IO[str] | None = None,
) -> StructuredLogger:
    """Install the process logger (``repro serve --log-format/--log-file``).

    ``--log-file`` without a format defaults to JSON lines (a file sink
    is for machines); a bare ``--log-format text`` without a file writes
    ``key=value`` lines to stderr via ``stream=sys.stderr`` at the call
    site.  Returns the installed logger.
    """
    global _logger
    fmt = log_format or ("json" if log_file is not None else "text")
    _logger.close()
    _logger = StructuredLogger(fmt, stream=stream, path=log_file)
    return _logger


def _reset_for_testing() -> None:
    global _logger
    _logger.close()
    _logger = StructuredLogger()


def validate_event(record: Any) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid event document.

    The contract the CI ``obs-smoke`` job holds every emitted JSON line
    to: known event name, numeric ``ts``, required fields present with
    the right types.  Extra fields are allowed (events may carry
    context like ``cache`` or ``key``).
    """
    if not isinstance(record, dict):
        raise ValueError(f"event must be an object, got {type(record).__name__}")
    event = record.get("event")
    if event not in EVENT_FIELDS:
        raise ValueError(f"unknown event {event!r}")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)):
        raise ValueError(f"event {event!r}: 'ts' must be a number, got {ts!r}")
    level = record.get("level")
    if level not in _LEVELS:
        raise ValueError(f"event {event!r}: unknown level {level!r}")
    for field_name, types in EVENT_FIELDS[event].items():
        if field_name not in record:
            raise ValueError(f"event {event!r}: missing field {field_name!r}")
        if not isinstance(record[field_name], types):
            raise ValueError(
                f"event {event!r}: field {field_name!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(record[field_name]).__name__}"
            )
