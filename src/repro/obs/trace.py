"""Trace propagation: ids, the wire header, and the ambient context.

A :class:`TraceContext` is generated once per request at whichever server
is the front door (the single-process :class:`~repro.service.server
.SolveServer` or the fleet :class:`~repro.service.router.RouterServer`)
and then *propagated*: the router forwards it to the owning worker in the
``X-Repro-Trace`` header, the worker parses it back, and every layer in
between reads it from a :mod:`contextvars` variable.  asyncio tasks
inherit it automatically; *threads* (the micro-batcher, executor pools)
do **not**, so off-loop hops carry the context explicitly (e.g.
``SolveRequest.trace``) — and the solver paths that run off-context by
design keep their payload bytes identical with tracing on or off.

Wire format (one header, three ``;``-separated fields)::

    X-Repro-Trace: <trace_id>;<span_id>;<tenant>

Both ids are 16 lowercase hex chars.  A malformed header is *replaced*
(new trace), never an error: tracing must not be able to fail a request.

Tenants come from the optional ``X-Repro-Tenant`` request header and are
sanitized (bounded charset and length, else ``"other"``) before they are
used as a metrics label — a client cannot grow label cardinality or break
the Prometheus exposition with a hostile tenant string.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace

__all__ = [
    "TRACE_HEADER",
    "TENANT_HEADER",
    "DEFAULT_TENANT",
    "TraceContext",
    "new_trace",
    "parse_trace_header",
    "current_trace",
    "set_current",
    "use_trace",
    "sanitize_tenant",
]

#: The propagation header (request *and* response; lowercase on parse —
#: the HTTP front-ends normalise header names).
TRACE_HEADER = "X-Repro-Trace"

#: Optional request header naming the tenant for per-tenant metrics labels.
TENANT_HEADER = "X-Repro-Tenant"

#: The tenant label when the client names none.
DEFAULT_TENANT = "default"

#: Sanitized tenant values: bounded charset, bounded length.
_TENANT_RE = re.compile(r"[A-Za-z0-9_.:-]{1,32}\Z")

_ID_RE = re.compile(r"[0-9a-f]{16}\Z")


def _new_id() -> str:
    """16 hex chars of OS entropy (no global RNG state touched)."""
    return os.urandom(8).hex()


def sanitize_tenant(value: str | None) -> str:
    """A tenant string safe to use as a metrics label value.

    Anything outside the bounded charset/length collapses onto
    ``"other"`` — one bounded series, not one per hostile client.
    """
    if value is None or value == "":
        return DEFAULT_TENANT
    return value if _TENANT_RE.match(value) else "other"


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: trace id, current span id, tenant."""

    trace_id: str
    span_id: str
    tenant: str = DEFAULT_TENANT

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — for the next hop's root span."""
        return replace(self, span_id=_new_id())

    def header_value(self) -> str:
        """Render for the ``X-Repro-Trace`` wire header."""
        return f"{self.trace_id};{self.span_id};{self.tenant}"


def new_trace(tenant: str | None = None) -> TraceContext:
    """A fresh front-door trace (sanitizes ``tenant``)."""
    return TraceContext(
        trace_id=_new_id(), span_id=_new_id(), tenant=sanitize_tenant(tenant)
    )


def parse_trace_header(value: str | None, *, tenant: str | None = None) -> TraceContext:
    """Parse one ``X-Repro-Trace`` value, or mint a new trace.

    A missing/malformed header yields a *new* trace rather than an error;
    an explicit ``tenant`` (from ``X-Repro-Tenant``) wins over the one
    riding in the trace header.
    """
    if value:
        parts = value.split(";")
        if len(parts) == 3 and _ID_RE.match(parts[0]) and _ID_RE.match(parts[1]):
            return TraceContext(
                trace_id=parts[0],
                span_id=parts[1],
                tenant=sanitize_tenant(tenant if tenant else parts[2]),
            )
    return new_trace(tenant)


#: The ambient trace of the request currently being served.  asyncio
#: tasks copy the context; plain threads do not (off-loop hops pass the
#: TraceContext explicitly instead).
_current: ContextVar[TraceContext | None] = ContextVar("repro_trace", default=None)


def current_trace() -> TraceContext | None:
    """The trace of the request being served here, if any."""
    return _current.get()


def set_current(ctx: TraceContext | None):
    """Set the ambient trace; returns the reset token."""
    return _current.set(ctx)


def reset_current(token) -> None:
    _current.reset(token)


@contextmanager
def use_trace(ctx: TraceContext | None):
    """Scope the ambient trace to a ``with`` block (tests, CLI paths)."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
