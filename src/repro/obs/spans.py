"""Timing spans: bounded per-trace ring buffer + duration histograms.

One process-global :class:`SpanRecorder` (:func:`recorder`) collects the
spans of every request served by this process.  Two read paths:

* ``GET /debug/trace/{id}`` returns the recorded spans of one trace (the
  router merges its own with each worker's, so a fleet answers with the
  full router→queue→engine breakdown);
* ``GET /metrics`` merges per-``(phase, tenant)`` duration histograms
  (log-spaced buckets, Prometheus ``_bucket``/``_sum``/``_count``
  counters) so span timing is scrapeable without per-trace reads.

Memory is strictly bounded: the ring keeps the most recent
``max_traces`` trace ids and at most ``max_spans_per_trace`` spans each;
histograms are bounded by the (phase, tenant) label space, with tenants
sanitized at the front door.  Recording is a dict append under one lock —
cheap enough for the serving hot path — and *observing* a request never
changes its answer bytes.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "Span",
    "SpanRecorder",
    "recorder",
    "set_identity",
    "HISTOGRAM_BUCKETS_S",
]

#: Log-spaced histogram bucket upper bounds, in seconds (+Inf implicit).
HISTOGRAM_BUCKETS_S = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


@dataclass(frozen=True)
class Span:
    """One timed phase of one traced request."""

    trace_id: str
    name: str
    start_s: float  # time.monotonic() at span start (process-local clock)
    duration_s: float
    tenant: str = "default"
    worker: str = ""
    labels: Mapping[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "tenant": self.tenant,
        }
        if self.worker:
            doc["worker"] = self.worker
        if self.labels:
            doc["labels"] = dict(self.labels)
        return doc


class SpanRecorder:
    """Bounded ring of recent traces and per-phase duration histograms."""

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 200) -> None:
        self._lock = threading.Lock()
        self._max_traces = int(max_traces)
        self._max_spans = int(max_spans_per_trace)
        self._traces: "OrderedDict[str, list[Span]]" = OrderedDict()
        # (phase, tenant) -> [count, sum_s, bucket_counts]
        self._hist: dict[tuple[str, str], list] = {}
        #: Ambient identity stamped on every span (e.g. worker="3").
        self.identity: str = ""

    # -- writing ---------------------------------------------------------

    def record(
        self,
        trace_id: str,
        name: str,
        start_s: float,
        duration_s: float,
        *,
        tenant: str = "default",
        **labels: str,
    ) -> None:
        """Append one span; drops silently when the per-trace cap is hit."""
        span = Span(
            trace_id=trace_id,
            name=name,
            start_s=start_s,
            duration_s=duration_s,
            tenant=tenant,
            worker=self.identity,
            labels=labels,
        )
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                while len(self._traces) >= self._max_traces:
                    self._traces.popitem(last=False)
                spans = []
                self._traces[trace_id] = spans
            if len(spans) < self._max_spans:
                spans.append(span)
            entry = self._hist.get((name, tenant))
            if entry is None:
                entry = [0, 0.0, [0] * (len(HISTOGRAM_BUCKETS_S) + 1)]
                self._hist[(name, tenant)] = entry
            entry[0] += 1
            entry[1] += duration_s
            for i, edge in enumerate(HISTOGRAM_BUCKETS_S):
                if duration_s <= edge:
                    entry[2][i] += 1
                    break
            else:
                entry[2][-1] += 1

    @contextmanager
    def span(
        self, trace_id: str | None, name: str, *, tenant: str = "default", **labels: str
    ) -> Iterator[None]:
        """Time a ``with`` block into one span (no-op without a trace id)."""
        if trace_id is None:
            yield
            return
        t0 = time.monotonic()
        try:
            yield
        finally:
            self.record(
                trace_id, name, t0, time.monotonic() - t0, tenant=tenant, **labels
            )

    # -- reading ---------------------------------------------------------

    def spans_for(self, trace_id: str) -> list[Span]:
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def trace_document(self, trace_id: str) -> dict[str, Any]:
        """The ``/debug/trace/{id}`` body for this process's spans."""
        spans = sorted(self.spans_for(trace_id), key=lambda s: s.start_s)
        return {"trace": trace_id, "spans": [s.to_dict() for s in spans]}

    def histogram_snapshot(self) -> dict[str, Any]:
        """Per-(phase, tenant) counters for the JSON ``/metrics`` document."""
        with self._lock:
            items = sorted(self._hist.items())
            return {
                f"{phase}|{tenant}": {
                    "phase": phase,
                    "tenant": tenant,
                    "count": entry[0],
                    "sum_s": entry[1],
                    "buckets": list(entry[2]),
                }
                for (phase, tenant), entry in items
            }

    def _reset_for_testing(self) -> None:
        with self._lock:
            self._traces.clear()
            self._hist.clear()
            self.identity = ""


def histogram_samples(
    snapshot: Mapping[str, Any], labels: Mapping[str, str] | None = None
) -> list[tuple[str, dict, float]]:
    """Flatten a histogram snapshot into Prometheus samples.

    Emits the conventional histogram series as three explicit counter
    families (``_bucket`` with a ``le`` label, ``_sum``, ``_count``) so
    the existing one-``# TYPE``-per-name renderer stays correct.
    """
    base = dict(labels or {})
    out: list[tuple[str, dict, float]] = []
    for entry in snapshot.values():
        phase, tenant = entry["phase"], entry["tenant"]
        series = {**base, "phase": phase, "tenant": tenant}
        cumulative = 0
        for edge, count in zip(HISTOGRAM_BUCKETS_S, entry["buckets"]):
            cumulative += count
            out.append(
                (
                    "repro_span_duration_seconds_bucket",
                    {**series, "le": f"{edge:g}"},
                    float(cumulative),
                )
            )
        out.append(
            (
                "repro_span_duration_seconds_bucket",
                {**series, "le": "+Inf"},
                float(entry["count"]),
            )
        )
        out.append(("repro_span_duration_seconds_sum", series, float(entry["sum_s"])))
        out.append(("repro_span_duration_seconds_count", series, float(entry["count"])))
    return out


#: The process-global recorder every server/engine layer records into.
_recorder = SpanRecorder()


def recorder() -> SpanRecorder:
    return _recorder


def set_identity(worker: int | str) -> None:
    """Stamp an ambient worker id on every span this process records."""
    _recorder.identity = str(worker)
