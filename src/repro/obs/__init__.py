"""Observability layer: tracing, spans, structured logging, trend gating.

Zero-dependency (stdlib only), threaded through every service hop:

* :mod:`repro.obs.trace`   — ``TraceContext`` (trace id + span id + tenant)
  generated at the front door, carried router→worker in the
  ``X-Repro-Trace`` header, held in a :mod:`contextvars` variable so any
  layer on the request path can read it;
* :mod:`repro.obs.spans`   — a bounded in-process span recorder (ring
  buffer keyed by trace id, exposed at ``GET /debug/trace/{id}``) plus
  per-phase/per-tenant duration histograms merged into ``/metrics``;
* :mod:`repro.obs.logging` — the JSON-lines / key=value structured
  logger that is the service's single logging path (request completions,
  failovers, fault injections, drain transitions, the kernel-tier
  fallback warning), configured by ``repro serve --log-format --log-file``;
* :mod:`repro.obs.pipeline` — dependency-declaring tasks executed in
  :class:`repro.dag.graph.TaskDAG` topological order (the yapim
  ``Task.requires`` idiom);
* :mod:`repro.obs.trend`   — the bench-history trend pipeline behind
  ``repro bench trend``: loads every ``BENCH_*.json``, orders runs by
  creation time, and flags *sustained* drift (not just single-baseline
  regressions) into a schema'd ``BENCH_trend.json``.

Design rule: trace ids ride response **headers** and the span recorder,
never the cached payload bytes — cached answers stay byte-identical
across requests (and with observability off) by construction.
"""

from .logging import StructuredLogger, configure_logging, get_logger, validate_event
from .pipeline import PipelineResult, Task, run_pipeline
from .spans import Span, SpanRecorder, recorder, set_identity
from .trace import (
    TRACE_HEADER,
    TENANT_HEADER,
    TraceContext,
    current_trace,
    new_trace,
    sanitize_tenant,
    use_trace,
)
from .trend import TREND_SCHEMA, run_trend, validate_trend

__all__ = [
    "TRACE_HEADER",
    "TENANT_HEADER",
    "TraceContext",
    "current_trace",
    "new_trace",
    "sanitize_tenant",
    "use_trace",
    "Span",
    "SpanRecorder",
    "recorder",
    "set_identity",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "validate_event",
    "Task",
    "PipelineResult",
    "run_pipeline",
    "TREND_SCHEMA",
    "run_trend",
    "validate_trend",
]
