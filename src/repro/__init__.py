"""repro — reproduction of *Strip packing with precedence constraints and
strip packing with release times* (Augustine, Banerjee, Irani; SPAA 2006 /
TCS 410(38-40), 2009).

Three problem variants, three headline algorithms:

* :func:`repro.precedence.dc_pack` — Algorithm 1, the
  ``(2 + log2(n+1))``-approximation for precedence-constrained strip
  packing (Theorem 2.3);
* :func:`repro.precedence.shelf_next_fit` — Algorithm F, the absolute
  3-approximation for the uniform-height case (Theorem 2.6);
* :func:`repro.release.aptas` — Algorithm 2, the asymptotic PTAS for strip
  packing with release times (Theorem 3.5).

Quick start::

    import numpy as np
    from repro import solve
    from repro.workloads import random_precedence_instance

    inst = random_precedence_instance(40, 0.05, np.random.default_rng(0))
    placement = solve(inst)            # picks DC for precedence instances
    print(placement.height)

See DESIGN.md for the full system inventory, EXPERIMENTS.md for the
paper-vs-measured record of every reproduced result, and
docs/ARCHITECTURE.md for the layer map (core -> geometry -> packing ->
precedence/release/exact -> engine -> sim -> bench -> cli) and the
subsystem data flows.
"""

from .core import (
    InvalidInstanceError,
    InvalidPlacementError,
    PlacedRect,
    Placement,
    PrecedenceInstance,
    Rect,
    ReleaseInstance,
    ReproError,
    SolverError,
    StripPackingInstance,
    combined_lower_bound,
    validate_placement,
)
from ._version import __version__
from .core.registry import available_algorithms, solve
from .dag import TaskDAG
from .engine import AlgorithmSpec, PortfolioResult, SolveReport, portfolio, run, solve_many
from .sim import SimTrace, simulate, simulate_instance

__all__ = [
    "AlgorithmSpec",
    "SolveReport",
    "PortfolioResult",
    "run",
    "solve_many",
    "portfolio",
    "SimTrace",
    "simulate",
    "simulate_instance",
    "Rect",
    "TaskDAG",
    "StripPackingInstance",
    "PrecedenceInstance",
    "ReleaseInstance",
    "Placement",
    "PlacedRect",
    "validate_placement",
    "combined_lower_bound",
    "solve",
    "available_algorithms",
    "ReproError",
    "InvalidInstanceError",
    "InvalidPlacementError",
    "SolverError",
    "__version__",
]
