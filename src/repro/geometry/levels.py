"""Shelf/level structures shared by the level-oriented packers.

A *level* (shelf) is a horizontal band ``[y, y + height)`` filled left to
right.  NFDH/FFDH/BFDH (and the uniform-height precedence algorithm ``F`` of
Section 2.2) all manipulate levels; this module centralises the bookkeeping
so each algorithm is a short strategy over a common structure.

Two implementations live here:

* :class:`Level`/:class:`LevelStack` — the object-based bookkeeping, still
  the right interface for the *online* shelf policy
  (:mod:`repro.sim.policies`), which commits one task at a time and reads
  shelves as objects.  The original packer loops over this structure are
  preserved verbatim in :mod:`repro.geometry.levels_reference` as the
  executable specification.
* :class:`LevelArray` — the columnar kernel the offline packers use:
  parallel numpy arrays of level ``y``/``height``/``used_width``, with the
  first-fit scan collapsed into one vectorized candidate mask (built in a
  single SIMD pass; ``argmax`` over the boolean mask short-circuits at the
  first fitting shelf) and best-fit into a masked ``argmin``.  Per
  rectangle this replaces an O(levels) Python loop of attribute accesses
  with a constant number of C-speed array operations, which is what drops
  FFDH from minutes to seconds at 10^5 rectangles (see
  ``BENCH_level_packers.json``).

Float discipline: every predicate the array kernel evaluates is the exact
elementwise image of the reference predicate (``used + w <= 1 + atol``,
``resid = (1 - used) - w``), so decisions — and therefore placements — are
bit-identical to the reference.  ``tests/test_levels_differential.py``
enforces this.

When the ``compiled`` kernel tier is active (:mod:`repro.kernels`, the
optional ``[speed]`` extra), :meth:`LevelArray.first_fit` and
:meth:`LevelArray.best_fit` dispatch to the ``@njit`` scalar scans in
:mod:`repro.kernels.compiled` — short-circuiting loops over the same
``used`` column with the same predicates, so decisions stay bit-identical
across all three tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import kernels as _kernels
from ..core import tol
from ..core.errors import InvalidPlacementError
from ..core.placement import Placement
from ..core.rectangle import Rect

__all__ = ["Level", "LevelStack", "LevelArray"]


@dataclass
class Level:
    """One shelf: rectangles placed left to right starting at height ``y``.

    ``height`` is the shelf's reserved vertical extent (for NFDH-style
    packers this is the height of the first rectangle placed on it; for the
    uniform-height algorithms it is the common height 1).
    """

    y: float
    height: float
    used_width: float = 0.0
    rects: list[Rect] = field(default_factory=list)

    def fits(self, rect: Rect, atol: float = tol.ATOL) -> bool:
        """Whether ``rect`` fits in the remaining width (height is *not*
        checked: level-packing conventions place the defining rectangle
        first and guarantee later rectangles are no taller)."""
        return tol.leq(self.used_width + rect.width, 1.0, atol)

    def push(self, rect: Rect) -> float:
        """Record ``rect`` at the current fill position and return its ``x``.

        The raw fill bookkeeping (no fit check): callers that commit
        placements themselves — the online shelf policy — share this one
        copy of the clamp/advance discipline with :meth:`add`.
        """
        x = tol.clamp(self.used_width, 0.0, 1.0 - rect.width)
        self.used_width += rect.width
        self.rects.append(rect)
        return x

    def add(self, rect: Rect, placement: Placement) -> None:
        """Place ``rect`` at the current fill position of this level."""
        if not self.fits(rect):
            raise InvalidPlacementError(
                f"rect {rect.rid!r} (w={rect.width:g}) does not fit on level at "
                f"y={self.y:g} with used width {self.used_width:g}"
            )
        placement.place(rect, self.push(rect), self.y)

    @property
    def top(self) -> float:
        """Upper boundary ``y + height`` of the shelf."""
        return self.y + self.height

    @property
    def filled_area(self) -> float:
        """Total area of the rectangles on this shelf."""
        return sum(r.area for r in self.rects)


class LevelStack:
    """An ordered stack of levels growing upward from ``y = base``."""

    __slots__ = ("levels", "base")

    def __init__(self, base: float = 0.0) -> None:
        self.base = base
        self.levels: list[Level] = []

    def open_level(self, height: float) -> Level:
        """Open a new level of the given height on top of the stack."""
        y = self.levels[-1].top if self.levels else self.base
        lvl = Level(y=y, height=height)
        self.levels.append(lvl)
        return lvl

    @property
    def top(self) -> float:
        """Current total top of the stack."""
        return self.levels[-1].top if self.levels else self.base

    @property
    def extent(self) -> float:
        """Total height consumed by the levels."""
        return self.top - self.base

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)


class LevelArray:
    """Columnar level bookkeeping: parallel arrays growing upward from
    ``y = base``.

    Levels are addressed by index (0 = lowest).  The arrays are
    preallocated and doubled on demand; scratch buffers for the fit mask
    and residuals are reused across queries so the steady-state cost per
    rectangle is a handful of vectorized passes with no allocation.
    """

    __slots__ = ("base", "_y", "_h", "_used", "_n", "_sum", "_resid", "_mask", "_nofit")

    def __init__(self, base: float = 0.0, capacity: int = 64) -> None:
        capacity = max(int(capacity), 1)
        self.base = base
        self._y = np.empty(capacity, dtype=np.float64)
        self._h = np.empty(capacity, dtype=np.float64)
        self._used = np.empty(capacity, dtype=np.float64)
        self._n = 0
        self._sum = np.empty(capacity, dtype=np.float64)
        self._resid = np.empty(capacity, dtype=np.float64)
        self._mask = np.empty(capacity, dtype=bool)
        self._nofit = np.empty(capacity, dtype=bool)

    def _grow(self) -> None:
        cap = 2 * len(self._y)
        for name in ("_y", "_h", "_used", "_sum", "_resid"):
            buf = np.empty(cap, dtype=np.float64)
            buf[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, buf)
        self._mask = np.empty(cap, dtype=bool)
        self._nofit = np.empty(cap, dtype=bool)

    # -- structure -------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def top(self) -> float:
        """Current total top of the stack (``base`` when empty)."""
        if self._n == 0:
            return self.base
        return float(self._y[self._n - 1] + self._h[self._n - 1])

    @property
    def extent(self) -> float:
        """Total height consumed by the levels."""
        return self.top - self.base

    def reset(self, base: float = 0.0) -> None:
        """Empty the stack for reuse.

        The batched stacked solve (:mod:`repro.engine.stacked`) packs K
        instances through one arena, resetting between segments instead
        of reallocating; the capacity and scratch buffers survive."""
        self.base = base
        self._n = 0

    def open_level(self, height: float) -> int:
        """Open a new level of the given height on top; return its index."""
        if self._n == len(self._y):
            self._grow()
        i = self._n
        self._y[i] = self.top
        self._h[i] = height
        self._used[i] = 0.0
        self._n = i + 1
        return i

    # -- fit queries -----------------------------------------------------
    def fits_on(self, idx: int, width: float) -> bool:
        """Whether ``width`` fits in the remaining width of level ``idx``
        (same predicate as :meth:`Level.fits`)."""
        return float(self._used[idx]) + width <= 1.0 + tol.ATOL

    def first_fit(self, width: float) -> int:
        """Lowest level with room for ``width``, or ``-1``.

        One vectorized pass builds ``used + width <= 1 + atol`` over every
        level (elementwise, the exact reference predicate); ``argmax`` on
        the boolean mask short-circuits at the first ``True``.
        """
        n = self._n
        if n == 0:
            return -1
        if _kernels.use_compiled():
            from ..kernels.compiled import level_first_fit

            return int(level_first_fit(self._used, n, width, tol.ATOL))
        s = self._sum[:n]
        np.add(self._used[:n], width, out=s)
        m = self._mask[:n]
        np.less_equal(s, 1.0 + tol.ATOL, out=m)
        i = int(m.argmax())
        return i if m[i] else -1

    def best_fit(self, width: float) -> int:
        """Fitting level with the least residual width, or ``-1``.

        Residuals are computed as ``(1 - used) - width`` — the reference
        kernel's exact expression — and the masked ``argmin`` returns the
        lowest index among ties, matching the reference's strict-improvement
        scan order.
        """
        n = self._n
        if n == 0:
            return -1
        if _kernels.use_compiled():
            from ..kernels.compiled import level_best_fit

            return int(level_best_fit(self._used, n, width, tol.ATOL))
        s = self._sum[:n]
        np.add(self._used[:n], width, out=s)
        m = self._mask[:n]
        np.less_equal(s, 1.0 + tol.ATOL, out=m)
        i = int(m.argmax())
        if not m[i]:
            return -1
        resid = self._resid[:n]
        np.subtract(1.0, self._used[:n], out=resid)
        np.subtract(resid, width, out=resid)
        nofit = self._nofit[:n]
        np.logical_not(m, out=nofit)
        resid[nofit] = np.inf
        return int(resid.argmin())

    # -- placement -------------------------------------------------------
    def place(self, idx: int, width: float) -> tuple[float, float]:
        """Advance level ``idx`` by ``width``; return the ``(x, y)`` of the
        placed rectangle (same clamp/advance discipline as
        :meth:`Level.push`).  No fit check — callers decide first."""
        used = float(self._used[idx])
        x = tol.clamp(used, 0.0, 1.0 - width)
        self._used[idx] = used + width
        return x, float(self._y[idx])
