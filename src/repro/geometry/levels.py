"""Shelf/level structures shared by the level-oriented packers.

A *level* (shelf) is a horizontal band ``[y, y + height)`` filled left to
right.  NFDH/FFDH/BFDH (and the uniform-height precedence algorithm ``F`` of
Section 2.2) all manipulate levels; this module centralises the bookkeeping
so each algorithm is a short strategy over a common structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import tol
from ..core.errors import InvalidPlacementError
from ..core.placement import Placement
from ..core.rectangle import Rect

__all__ = ["Level", "LevelStack"]


@dataclass
class Level:
    """One shelf: rectangles placed left to right starting at height ``y``.

    ``height`` is the shelf's reserved vertical extent (for NFDH-style
    packers this is the height of the first rectangle placed on it; for the
    uniform-height algorithms it is the common height 1).
    """

    y: float
    height: float
    used_width: float = 0.0
    rects: list[Rect] = field(default_factory=list)

    def fits(self, rect: Rect, atol: float = tol.ATOL) -> bool:
        """Whether ``rect`` fits in the remaining width (height is *not*
        checked: level-packing conventions place the defining rectangle
        first and guarantee later rectangles are no taller)."""
        return tol.leq(self.used_width + rect.width, 1.0, atol)

    def push(self, rect: Rect) -> float:
        """Record ``rect`` at the current fill position and return its ``x``.

        The raw fill bookkeeping (no fit check): callers that commit
        placements themselves — the online shelf policy — share this one
        copy of the clamp/advance discipline with :meth:`add`.
        """
        x = tol.clamp(self.used_width, 0.0, 1.0 - rect.width)
        self.used_width += rect.width
        self.rects.append(rect)
        return x

    def add(self, rect: Rect, placement: Placement) -> None:
        """Place ``rect`` at the current fill position of this level."""
        if not self.fits(rect):
            raise InvalidPlacementError(
                f"rect {rect.rid!r} (w={rect.width:g}) does not fit on level at "
                f"y={self.y:g} with used width {self.used_width:g}"
            )
        placement.place(rect, self.push(rect), self.y)

    @property
    def top(self) -> float:
        """Upper boundary ``y + height`` of the shelf."""
        return self.y + self.height

    @property
    def filled_area(self) -> float:
        """Total area of the rectangles on this shelf."""
        return sum(r.area for r in self.rects)


class LevelStack:
    """An ordered stack of levels growing upward from ``y = base``."""

    __slots__ = ("levels", "base")

    def __init__(self, base: float = 0.0) -> None:
        self.base = base
        self.levels: list[Level] = []

    def open_level(self, height: float) -> Level:
        """Open a new level of the given height on top of the stack."""
        y = self.levels[-1].top if self.levels else self.base
        lvl = Level(y=y, height=height)
        self.levels.append(lvl)
        return lvl

    @property
    def top(self) -> float:
        """Current total top of the stack."""
        return self.levels[-1].top if self.levels else self.base

    @property
    def extent(self) -> float:
        """Total height consumed by the levels."""
        return self.top - self.base

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)
