"""Reference level-packing kernels — the executable specification.

This module preserves, verbatim, the object-based shelf bookkeeping
(:class:`ReferenceLevel` / :class:`ReferenceLevelStack`, the pre-columnar
``Level``/``LevelStack``) and the original NFDH/FFDH/BFDH packer loops
over it.  It exists for two purposes, exactly mirroring
:mod:`repro.geometry.skyline_reference`:

* **differential testing** — ``tests/test_levels_differential.py`` runs
  the array kernels (:class:`repro.geometry.levels.LevelArray` via
  :mod:`repro.packing`) and these references over the same inputs and
  requires placement-for-placement equality (same ``(x, y)`` for every
  rectangle, same extents);
* **benchmarking** — the ``level_packers`` bench spec races the array
  kernels against these, so every ``BENCH_level_packers.json`` artifact
  records the before/after of the columnar rewrite.

The per-level Python scans are deliberate: each loop is a direct
transcription of the algorithm's textbook statement.  Do not optimize this
module — its only job is to be obviously correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core import tol
from ..core.errors import InvalidPlacementError
from ..core.placement import Placement
from ..core.rectangle import Rect, decreasing_height_order
from ..packing.base import PackResult

__all__ = [
    "ReferenceLevel",
    "ReferenceLevelStack",
    "reference_nfdh",
    "reference_ffdh",
    "reference_bfdh",
]


@dataclass
class ReferenceLevel:
    """One shelf: rectangles placed left to right starting at height ``y``.

    ``height`` is the shelf's reserved vertical extent (for NFDH-style
    packers this is the height of the first rectangle placed on it; for the
    uniform-height algorithms it is the common height 1).
    """

    y: float
    height: float
    used_width: float = 0.0
    rects: list[Rect] = field(default_factory=list)

    def fits(self, rect: Rect, atol: float = tol.ATOL) -> bool:
        """Whether ``rect`` fits in the remaining width (height is *not*
        checked: level-packing conventions place the defining rectangle
        first and guarantee later rectangles are no taller)."""
        return tol.leq(self.used_width + rect.width, 1.0, atol)

    def push(self, rect: Rect) -> float:
        """Record ``rect`` at the current fill position and return its ``x``."""
        x = tol.clamp(self.used_width, 0.0, 1.0 - rect.width)
        self.used_width += rect.width
        self.rects.append(rect)
        return x

    def add(self, rect: Rect, placement: Placement) -> None:
        """Place ``rect`` at the current fill position of this level."""
        if not self.fits(rect):
            raise InvalidPlacementError(
                f"rect {rect.rid!r} (w={rect.width:g}) does not fit on level at "
                f"y={self.y:g} with used width {self.used_width:g}"
            )
        placement.place(rect, self.push(rect), self.y)

    @property
    def top(self) -> float:
        """Upper boundary ``y + height`` of the shelf."""
        return self.y + self.height


class ReferenceLevelStack:
    """An ordered stack of levels growing upward from ``y = base``."""

    __slots__ = ("levels", "base")

    def __init__(self, base: float = 0.0) -> None:
        self.base = base
        self.levels: list[ReferenceLevel] = []

    def open_level(self, height: float) -> ReferenceLevel:
        """Open a new level of the given height on top of the stack."""
        y = self.levels[-1].top if self.levels else self.base
        lvl = ReferenceLevel(y=y, height=height)
        self.levels.append(lvl)
        return lvl

    @property
    def top(self) -> float:
        """Current total top of the stack."""
        return self.levels[-1].top if self.levels else self.base

    @property
    def extent(self) -> float:
        """Total height consumed by the levels."""
        return self.top - self.base

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)


# ----------------------------------------------------------------------
# the original packer loops, verbatim
# ----------------------------------------------------------------------

def reference_nfdh(rects: Sequence[Rect], y: float = 0.0) -> PackResult:
    """Next-Fit Decreasing Height over the object-based level stack."""
    placement = Placement()
    if not rects:
        return PackResult(placement, 0.0)
    ordered = decreasing_height_order(rects)
    stack = ReferenceLevelStack(base=y)
    level = stack.open_level(ordered[0].height)
    for r in ordered:
        if not level.fits(r):
            level = stack.open_level(r.height)
        level.add(r, placement)
    return PackResult(placement, stack.extent)


def reference_ffdh(rects: Sequence[Rect], y: float = 0.0) -> PackResult:
    """First-Fit Decreasing Height: linear scan for the lowest open level."""
    placement = Placement()
    if not rects:
        return PackResult(placement, 0.0)
    ordered = decreasing_height_order(rects)
    stack = ReferenceLevelStack(base=y)
    for r in ordered:
        target = None
        for level in stack:
            if level.fits(r):
                target = level
                break
        if target is None:
            target = stack.open_level(r.height)
        target.add(r, placement)
    return PackResult(placement, stack.extent)


def reference_bfdh(rects: Sequence[Rect], y: float = 0.0) -> PackResult:
    """Best-Fit Decreasing Height: full scan for the tightest residual."""
    placement = Placement()
    if not rects:
        return PackResult(placement, 0.0)
    ordered = decreasing_height_order(rects)
    stack = ReferenceLevelStack(base=y)
    for r in ordered:
        best = None
        best_resid = None
        for level in stack:
            if level.fits(r):
                resid = 1.0 - level.used_width - r.width
                if best_resid is None or resid < best_resid:
                    best, best_resid = level, resid
        if best is None:
            best = stack.open_level(r.height)
        best.add(r, placement)
    return PackResult(placement, stack.extent)
