"""Geometric substrate: skyline, shelves, occupancy metrics, stackings."""

from .levels import Level, LevelStack
from .occupancy import band_density, occupancy_profile, union_area, utilisation
from .skyline import Skyline, SkySegment
from .stacking import Stacking, contains, stack

__all__ = [
    "Skyline",
    "SkySegment",
    "Level",
    "LevelStack",
    "union_area",
    "occupancy_profile",
    "band_density",
    "utilisation",
    "Stacking",
    "stack",
    "contains",
]
