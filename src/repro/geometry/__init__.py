"""Geometric substrate: skyline, shelves, occupancy metrics, stackings.

* :mod:`repro.geometry.skyline` — the optimized skyline kernel behind
  bottom-left packing, branch-and-bound, and the release heuristics;
* :mod:`repro.geometry.skyline_reference` — the original linear-scan
  kernel, kept as the executable specification for differential tests and
  the ``skyline_bottom_left`` bench;
* :mod:`repro.geometry.levels` — shelf/level bookkeeping for the
  level-oriented packers;
* :mod:`repro.geometry.occupancy` — union area, occupancy profiles, and
  band densities (with vectorised fast paths);
* :mod:`repro.geometry.stacking` — the paper's stacking abstraction.
"""

from .levels import Level, LevelStack
from .occupancy import band_density, occupancy_profile, union_area, utilisation
from .skyline import Skyline, SkySegment
from .skyline_reference import ReferenceSkyline
from .stacking import Stacking, contains, stack

__all__ = [
    "Skyline",
    "SkySegment",
    "ReferenceSkyline",
    "Level",
    "LevelStack",
    "union_area",
    "occupancy_profile",
    "band_density",
    "utilisation",
    "Stacking",
    "stack",
    "contains",
]
