"""Geometric substrate: skyline, shelves, occupancy metrics, stackings.

* :mod:`repro.geometry.skyline` — the optimized skyline kernel behind
  bottom-left packing, branch-and-bound, and the release heuristics;
* :mod:`repro.geometry.skyline_reference` — the original linear-scan
  kernel, kept as the executable specification for differential tests and
  the ``skyline_bottom_left`` bench;
* :mod:`repro.geometry.levels` — shelf/level bookkeeping: the columnar
  :class:`~repro.geometry.levels.LevelArray` kernel the offline packers
  use, plus the object-based shelves the online policy keeps;
* :mod:`repro.geometry.levels_reference` — the original object-based
  level-packing loops, kept as the executable specification for
  differential tests and the ``level_packers`` bench;
* :mod:`repro.geometry.occupancy` — union area, occupancy profiles, and
  band densities (with vectorised fast paths);
* :mod:`repro.geometry.stacking` — the paper's stacking abstraction.
"""

from .levels import Level, LevelArray, LevelStack
from .occupancy import band_density, occupancy_profile, union_area, utilisation
from .skyline import Skyline, SkySegment
from .skyline_reference import ReferenceSkyline
from .stacking import Stacking, contains, stack

# Imported last: levels_reference pulls in repro.packing (for PackResult),
# which imports the modules above from this partially-initialised package.
from .levels_reference import (  # noqa: E402  (deliberate late import)
    ReferenceLevel,
    ReferenceLevelStack,
    reference_bfdh,
    reference_ffdh,
    reference_nfdh,
)

__all__ = [
    "Skyline",
    "SkySegment",
    "ReferenceSkyline",
    "Level",
    "LevelArray",
    "LevelStack",
    "ReferenceLevel",
    "ReferenceLevelStack",
    "reference_nfdh",
    "reference_ffdh",
    "reference_bfdh",
    "union_area",
    "occupancy_profile",
    "band_density",
    "utilisation",
    "Stacking",
    "stack",
    "contains",
]
