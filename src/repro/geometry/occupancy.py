"""Occupancy metrics over placements.

Provides the measured quantities the benchmarks report alongside heights:

* exact covered (union) area of a placement, via a coordinate-compressed
  sweep — used for density/utilisation numbers;
* the horizontal *occupancy profile* (covered width as a function of
  height), the quantity behind the paper's shelf-density argument in
  Theorem 2.6 and behind FPGA utilisation plots;
* per-band density queries (e.g. "what fraction of shelf ``i`` is filled").

Both :func:`union_area` and :func:`occupancy_profile` carry a vectorised
fast path: the profile drops from ``O(n * n_samples)`` to
``O((n + n_samples) log n)``, while the union sweep keeps its
``O(n * bands)`` worst case but moves the per-band interval merge into
numpy (a large constant-factor win; still quadratic-ish, so keep it off
10^5-rectangle hot loops).  The small-input Python paths double as their
executable reference in the tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.placement import PlacedRect, Placement

__all__ = [
    "union_area",
    "occupancy_profile",
    "band_density",
    "utilisation",
]

#: Below this many rectangles the plain-Python sweep beats numpy dispatch.
_NUMPY_CUTOVER = 64


def union_area(placed: Iterable[PlacedRect]) -> float:
    """Exact area of the union of the placed rectangles.

    Coordinate-compress y, then for each elementary y-band merge the
    x-intervals active in it.  ``O(n^2 log n)`` worst case either way;
    large inputs take :func:`_union_area_numpy` (same sweep, vectorised
    per-band interval union — a big constant-factor win), small ones the
    direct Python merge.  For valid (non-overlapping) placements this
    equals the sum of areas — the validator tests exploit that.
    """
    items = list(placed)
    if not items:
        return 0.0
    if len(items) >= _NUMPY_CUTOVER:
        return _union_area_numpy(items)
    ys = sorted({pr.y for pr in items} | {pr.y2 for pr in items})
    total = 0.0
    for y0, y1 in zip(ys, ys[1:]):
        if y1 <= y0:
            continue
        xs: list[tuple[float, float]] = [
            (pr.x, pr.x2) for pr in items if pr.y < y1 and pr.y2 > y0
        ]
        if not xs:
            continue
        xs.sort()
        covered = 0.0
        cur_lo, cur_hi = xs[0]
        for lo, hi in xs[1:]:
            if lo > cur_hi:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        covered += cur_hi - cur_lo
        total += covered * (y1 - y0)
    return total


def _union_area_numpy(items: Sequence[PlacedRect]) -> float:
    """Vectorised sweep behind :func:`union_area`.

    Same elementary y-bands; within each band the x-interval union is
    computed with a running maximum over interval ends instead of a Python
    merge loop.
    """
    lo = np.array([pr.x for pr in items])
    hi = np.array([pr.x2 for pr in items])
    y0s = np.array([pr.y for pr in items])
    y1s = np.array([pr.y2 for pr in items])
    order = np.argsort(lo, kind="stable")
    lo, hi, y0s, y1s = lo[order], hi[order], y0s[order], y1s[order]
    bands = np.unique(np.concatenate([y0s, y1s]))
    total = 0.0
    for b0, b1 in zip(bands[:-1], bands[1:]):
        active = (y0s < b1) & (y1s > b0)
        if not active.any():
            continue
        al, ah = lo[active], hi[active]  # already sorted by interval start
        run = np.maximum.accumulate(ah)
        gaps = np.maximum(al[1:] - run[:-1], 0.0).sum()
        total += (run[-1] - al[0] - gaps) * (b1 - b0)
    return float(total)


def occupancy_profile(
    placement: Placement, n_samples: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """Covered width as a function of height, sampled on a uniform grid.

    Returns ``(heights, widths)`` arrays of length ``n_samples``; widths are
    exact at each sampled height (sum of widths of rectangles whose y-range
    strictly contains the sample).

    Implemented as two sorted cumulative-weight lookups — the covered width
    at ``y`` is (total width of rectangles starting at or below ``y``) minus
    (total width of rectangles ending at or below ``y``) — so the cost is
    ``O((n + n_samples) log n)`` instead of ``O(n * n_samples)``.
    """
    H = placement.height
    heights = np.linspace(0.0, H, n_samples, endpoint=False) + (H / n_samples) / 2.0
    items = list(placement)
    if not items:
        return heights, np.zeros(n_samples)
    y_starts = np.array([pr.y for pr in items])
    y_ends = np.array([pr.y2 for pr in items])
    widths_arr = np.array([pr.rect.width for pr in items])

    s_order = np.argsort(y_starts, kind="stable")
    start_vals = y_starts[s_order]
    start_cum = np.cumsum(widths_arr[s_order])
    e_order = np.argsort(y_ends, kind="stable")
    end_vals = y_ends[e_order]
    end_cum = np.cumsum(widths_arr[e_order])

    a = np.searchsorted(start_vals, heights, side="right")  # #{start <= y}
    b = np.searchsorted(end_vals, heights, side="right")    # #{end <= y}: kept iff y < end
    covered = np.where(a > 0, start_cum[np.maximum(a - 1, 0)], 0.0) - np.where(
        b > 0, end_cum[np.maximum(b - 1, 0)], 0.0
    )
    return heights, covered


def band_density(placement: Placement, y0: float, y1: float) -> float:
    """Fraction of the band ``[y0, y1) x [0, 1]`` covered by rectangles.

    This is the quantity the red/green shelf-colouring argument of
    Theorem 2.6 bounds: consecutive red shelves have density >= 1/2.
    """
    if y1 <= y0:
        return 0.0
    # Valid placements never overlap, so clipped rectangle areas sum exactly.
    area = 0.0
    for pr in placement:
        lo, hi = max(pr.y, y0), min(pr.y2, y1)
        if hi > lo:
            area += (hi - lo) * pr.rect.width
    return area / (y1 - y0)


def utilisation(placement: Placement) -> float:
    """Overall density: covered area over ``height * 1`` (0 when empty)."""
    H = placement.height
    if H <= 0.0:
        return 0.0
    return union_area(iter(placement)) / H


def shelf_boundaries(placement: Placement, shelf_height: float = 1.0) -> Sequence[float]:
    """Uniform shelf boundaries covering the placement (Section 2.2 uses
    integer boundaries for height-1 rectangles)."""
    import math

    H = placement.height
    n = max(1, math.ceil(H / shelf_height - 1e-12))
    return [i * shelf_height for i in range(n + 1)]
