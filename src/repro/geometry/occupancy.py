"""Occupancy metrics over placements.

Provides the measured quantities the benchmarks report alongside heights:

* exact covered (union) area of a placement, via a coordinate-compressed
  sweep — used for density/utilisation numbers;
* the horizontal *occupancy profile* (covered width as a function of
  height), the quantity behind the paper's shelf-density argument in
  Theorem 2.6 and behind FPGA utilisation plots;
* per-band density queries (e.g. "what fraction of shelf ``i`` is filled").
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.placement import PlacedRect, Placement

__all__ = [
    "union_area",
    "occupancy_profile",
    "band_density",
    "utilisation",
]


def union_area(placed: Iterable[PlacedRect]) -> float:
    """Exact area of the union of the placed rectangles.

    Coordinate-compress y, then for each elementary y-band merge the
    x-intervals active in it.  O(n^2 log n) worst case; instances here are
    thousands of rectangles at most.  For valid (non-overlapping) placements
    this equals the sum of areas — the validator tests exploit that.
    """
    items = list(placed)
    if not items:
        return 0.0
    ys = sorted({pr.y for pr in items} | {pr.y2 for pr in items})
    total = 0.0
    for y0, y1 in zip(ys, ys[1:]):
        if y1 <= y0:
            continue
        xs: list[tuple[float, float]] = [
            (pr.x, pr.x2) for pr in items if pr.y < y1 and pr.y2 > y0
        ]
        if not xs:
            continue
        xs.sort()
        covered = 0.0
        cur_lo, cur_hi = xs[0]
        for lo, hi in xs[1:]:
            if lo > cur_hi:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        covered += cur_hi - cur_lo
        total += covered * (y1 - y0)
    return total


def occupancy_profile(
    placement: Placement, n_samples: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """Covered width as a function of height, sampled on a uniform grid.

    Returns ``(heights, widths)`` arrays of length ``n_samples``; widths are
    exact at each sampled height (sum of widths of rectangles whose y-range
    strictly contains the sample).
    """
    H = placement.height
    heights = np.linspace(0.0, H, n_samples, endpoint=False) + (H / n_samples) / 2.0
    items = sorted(placement, key=lambda pr: pr.y)
    y_starts = np.array([pr.y for pr in items])
    y_ends = np.array([pr.y2 for pr in items])
    widths_arr = np.array([pr.rect.width for pr in items])
    covered = np.empty(n_samples)
    for i, y in enumerate(heights):
        mask = (y_starts <= y) & (y < y_ends)
        covered[i] = float(widths_arr[mask].sum())
    return heights, covered


def band_density(placement: Placement, y0: float, y1: float) -> float:
    """Fraction of the band ``[y0, y1) x [0, 1]`` covered by rectangles.

    This is the quantity the red/green shelf-colouring argument of
    Theorem 2.6 bounds: consecutive red shelves have density >= 1/2.
    """
    if y1 <= y0:
        return 0.0
    # Valid placements never overlap, so clipped rectangle areas sum exactly.
    area = 0.0
    for pr in placement:
        lo, hi = max(pr.y, y0), min(pr.y2, y1)
        if hi > lo:
            area += (hi - lo) * pr.rect.width
    return area / (y1 - y0)


def utilisation(placement: Placement) -> float:
    """Overall density: covered area over ``height * 1`` (0 when empty)."""
    H = placement.height
    if H <= 0.0:
        return 0.0
    return union_area(iter(placement)) / H


def shelf_boundaries(placement: Placement, shelf_height: float = 1.0) -> Sequence[float]:
    """Uniform shelf boundaries covering the placement (Section 2.2 uses
    integer boundaries for height-1 rectangles)."""
    import math

    H = placement.height
    n = max(1, math.ceil(H / shelf_height - 1e-12))
    return [i * shelf_height for i in range(n + 1)]
