"""Stackings and containment — the machinery of Fig. 3 / Lemma 3.2.

The width-grouping reduction of Section 3 reasons about *stackings*: the
rectangles of one release class placed left-justified one on top of another
in non-increasing width order.  A stacking is summarised by its *width
profile* — a non-increasing step function ``width(y)`` for ``y`` in
``[0, H)`` where ``H`` is the total stacked height.

Set ``S`` is *contained* in ``S'`` (same release time) when the stacked area
of ``S'`` can be placed to cover the stacked area of ``S``; because both
profiles are non-increasing and left-anchored this holds iff the profile of
``S'`` dominates the profile of ``S`` pointwise (after aligning bases).
``OPT_f`` is monotone under containment — the inequality chain
``P_inf ⊆ P(R) ⊆ P(R,W) ⊆ P_sup`` in Lemma 3.2's proof is checked in tests
with exactly these predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core import tol
from ..core.rectangle import Rect

__all__ = ["Stacking", "stack", "contains"]


@dataclass(frozen=True)
class Stacking:
    """A stacking: rectangles sorted by non-increasing width, left-justified.

    ``steps`` holds ``(y_base, height, width)`` triples bottom-up with
    non-increasing widths.
    """

    steps: tuple[tuple[float, float, float], ...]

    @property
    def height(self) -> float:
        """Total stacked height ``H(S)``."""
        if not self.steps:
            return 0.0
        y, h, _ = self.steps[-1]
        return y + h

    @property
    def area(self) -> float:
        """Total stacked area (equals the rectangle area sum)."""
        return sum(h * w for _, h, w in self.steps)

    def width_at(self, y: float) -> float:
        """Profile value: the width of the step containing height ``y``
        (0 above the stacking)."""
        if y < 0.0:
            raise ValueError(f"height must be non-negative, got {y}")
        for base, h, w in self.steps:
            if base <= y < base + h:
                return w
        return 0.0

    def breakpoints(self) -> list[float]:
        """All step boundaries (bases and the final top)."""
        pts = [base for base, _, _ in self.steps]
        pts.append(self.height)
        return pts

    def cut_heights(self, n_groups: int) -> list[float]:
        """The Lemma 3.2 cutting lines ``y = l * H / n_groups`` for
        ``0 <= l < n_groups``."""
        H = self.height
        return [ell * H / n_groups for ell in range(n_groups)]


def stack(rects: Iterable[Rect]) -> Stacking:
    """Build the stacking of ``rects`` (sorted non-increasing width,
    deterministic tie-break on height then id for reproducibility)."""
    ordered = sorted(rects, key=lambda r: (-r.width, -r.height, str(r.rid)))
    steps: list[tuple[float, float, float]] = []
    y = 0.0
    for r in ordered:
        steps.append((y, r.height, r.width))
        y += r.height
    return Stacking(tuple(steps))


def contains(outer: Stacking, inner: Stacking, atol: float = tol.ATOL) -> bool:
    """Whether ``outer`` contains ``inner`` (profiles base-aligned).

    Checks profile dominance at every breakpoint of either stacking — the
    profiles are step functions, so pointwise dominance on the merged
    breakpoint set implies dominance everywhere.
    """
    if tol.lt(outer.height, inner.height, atol):
        return False
    pts = sorted(set(outer.breakpoints()) | set(inner.breakpoints()))
    for y0, y1 in zip(pts, pts[1:]):
        if y1 - y0 <= atol:
            # Sub-tolerance slivers arise from float summation-order noise
            # between the two stackings' cumulative heights; ignore them.
            continue
        mid = (y0 + y1) / 2.0
        if mid >= inner.height:
            break
        if tol.lt(outer.width_at(mid), inner.width_at(mid), atol):
            return False
    return True
