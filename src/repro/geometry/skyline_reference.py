"""Reference skyline implementation — the executable specification.

This is the original sorted-list/linear-scan kernel that
:class:`repro.geometry.skyline.Skyline` replaced.  It is kept verbatim for
two purposes:

* **differential testing** — ``tests/test_skyline_differential.py`` drives
  random placement sequences through both kernels and requires them to
  agree placement-for-placement (same ``(x, y)`` for every rectangle);
* **benchmarking** — the ``skyline_bottom_left`` bench spec races the
  optimized kernel against this one, so every ``BENCH_skyline_bottom_left``
  artifact records the before/after of the optimization.

The quadratic shape is deliberate: ``candidate_positions`` recomputes
``support_y`` (a full scan) per candidate, which makes every behaviour a
direct transcription of the definitions in the module docstring of
:mod:`repro.geometry.skyline`.  Do not optimize this module — its only job
is to be obviously correct.
"""

from __future__ import annotations

from typing import Iterator

from ..core import tol
from ..core.errors import InvalidPlacementError
from .skyline import SkySegment

__all__ = ["ReferenceSkyline"]


class ReferenceSkyline:
    """The skyline over a strip of width 1 (floor at ``y = 0``).

    Same public API and semantics as :class:`repro.geometry.skyline.Skyline`
    (which documents the operations); this variant favours obviousness over
    speed — a sorted list of segments, full linear scans everywhere.
    """

    __slots__ = ("_segs",)

    def __init__(self) -> None:
        self._segs: list[SkySegment] = [SkySegment(0.0, 1.0, 0.0)]

    # ------------------------------------------------------------------
    def segments(self) -> list[SkySegment]:
        """Current segments, left to right."""
        return list(self._segs)

    def __iter__(self) -> Iterator[SkySegment]:
        return iter(self._segs)

    @property
    def max_y(self) -> float:
        """Highest skyline level."""
        return max(s.y for s in self._segs)

    @property
    def min_y(self) -> float:
        """Lowest skyline level."""
        return min(s.y for s in self._segs)

    # ------------------------------------------------------------------
    def support_y(self, x: float, width: float) -> float:
        """Lowest ``y`` at which a width-``width`` rectangle with left edge at
        ``x`` can rest: the max skyline height over ``[x, x+width)``."""
        if tol.lt(x, 0.0) or tol.gt(x + width, 1.0):
            raise InvalidPlacementError(f"x-range [{x}, {x + width}] outside the strip")
        y = 0.0
        for s in self._segs:
            if tol.leq(s.x2, x) or tol.geq(s.x, x + width):
                continue
            y = max(y, s.y)
        return y

    def candidate_positions(self, width: float) -> list[tuple[float, float]]:
        """Candidate ``(x, y)`` placements for a width-``width`` rectangle.

        Candidates are left edges flush with segment starts, plus right edge
        flush with the strip's right wall; each paired with its support
        height.  Every "bottom-left stable" position is included, which is
        what both the BL heuristic and the exact solver branch over.
        """
        xs: set[float] = set()
        for s in self._segs:
            if tol.leq(s.x + width, 1.0):
                xs.add(s.x)
            # right-flush against this segment's right end
            x_right = s.x2 - width
            if tol.geq(x_right, 0.0):
                xs.add(max(0.0, x_right))
        if tol.leq(width, 1.0):
            xs.add(0.0)
            xs.add(1.0 - width)
        out = []
        for x in sorted(xs):
            x = tol.clamp(x, 0.0, 1.0 - width)
            out.append((x, self.support_y(x, width)))
        return out

    def lowest_position(self, width: float) -> tuple[float, float]:
        """Bottom-left rule: the candidate with minimal ``y``, ties broken by
        minimal ``x``."""
        cands = self.candidate_positions(width)
        return min(cands, key=lambda p: (p[1], p[0]))

    # ------------------------------------------------------------------
    def place(self, x: float, width: float, height: float) -> float:
        """Rest a ``width x height`` rectangle with left edge at ``x`` on the
        skyline; returns the ``y`` it lands at and raises the envelope."""
        y = self.support_y(x, width)
        top = y + height
        new: list[SkySegment] = []
        for s in self._segs:
            if tol.leq(s.x2, x) or tol.geq(s.x, x + width):
                new.append(s)
                continue
            # left remainder
            if tol.lt(s.x, x):
                new.append(SkySegment(s.x, x - s.x, s.y))
            # right remainder
            if tol.gt(s.x2, x + width):
                new.append(SkySegment(x + width, s.x2 - (x + width), s.y))
        new.append(SkySegment(x, width, top))
        new.sort(key=lambda s: s.x)
        self._segs = _merge_adjacent(new)
        return y

    def waste_below(self, level: float) -> float:
        """Area of the region under ``level`` but above the skyline — the
        holes a level-based packer has committed to waste."""
        return sum(max(0.0, level - s.y) * s.width for s in self._segs)


def _merge_adjacent(segs: list[SkySegment]) -> list[SkySegment]:
    """Merge consecutive segments at equal height (within tolerance)."""
    merged: list[SkySegment] = []
    for s in segs:
        if merged and tol.eq(merged[-1].y, s.y) and tol.eq(merged[-1].x2, s.x):
            last = merged.pop()
            merged.append(SkySegment(last.x, last.width + s.width, last.y))
        else:
            merged.append(s)
    return merged
