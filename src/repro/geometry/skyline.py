"""Skyline data structure for bottom-left style packing.

A *skyline* is a piecewise-constant upper envelope of the rectangles placed
so far: a list of maximal segments ``(x, width, y)`` partitioning ``[0, 1]``.
It supports the two operations bottom-left packers and the exact
branch-and-bound solver need:

* enumerate candidate positions for a width-``w`` rectangle (the classic
  "corner points" — left edge flush with a segment boundary, plus
  right-flush positions), each with the lowest feasible ``y`` there;
* commit a placement, merging segments.

This is the library's hottest kernel: bottom-left, branch-and-bound, and
the release heuristics all sit on it, and ``benchmarks`` drive it with
hundreds of thousands of placements.  The implementation therefore trades
the obvious per-candidate rescan for three structural ideas, while keeping
behaviour identical to the executable specification in
:mod:`repro.geometry.skyline_reference` for every width beyond the
comparison tolerance (``w > tol.ATOL``; degenerate sliver widths at or
below tolerance may order equal-coordinate segments differently — no
packer produces them).  The equivalence is enforced by the differential
tests in ``tests/test_skyline_differential.py``:

* **indexed parallel arrays** — segments live in three plain float lists
  ``(_xs, _ws, _ys)`` bisected by start coordinate, so queries touch a
  window of segments instead of scanning the whole envelope;
* **single-sweep candidate evaluation** — ``lowest_position`` walks the
  sorted candidates once, maintaining the windowed height maximum with a
  monotonic deque (two-pointer sliding window), which evaluates *all*
  candidates in ``O(m)`` amortized instead of ``O(m^2)``;
* **lowest-segment fast path** — the bottom-left rule usually lands on the
  lowest segment; when the rectangle fits inside the leftmost lowest
  segment the answer is found in ``O(m)`` C-speed primitives
  (``min``/``list.index``) without materialising candidates at all.

``place`` splices only the affected window (located by bisection) and
re-merges locally, relying on the invariant that the segment list is always
fully merged between calls.

The ``skyline_bottom_left`` bench spec (``repro bench skyline_bottom_left``)
tracks the speedup of this kernel over the reference implementation;
``BENCH_skyline_bottom_left.json`` artifacts carry the measured before/after.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .. import kernels as _kernels
from ..core import tol
from ..core.errors import InvalidPlacementError

__all__ = ["Skyline", "SkySegment"]

_ATOL = tol.ATOL

#: Below this many segments the Python fast path beats the list-to-array
#: conversion the compiled sweep needs; the answer is identical either way.
_COMPILED_MIN_SEGS = 16


@dataclass(frozen=True, slots=True)
class SkySegment:
    """Maximal horizontal segment of the skyline at height ``y``."""

    x: float
    width: float
    y: float

    @property
    def x2(self) -> float:
        """Right edge ``x + width``."""
        return self.x + self.width


class Skyline:
    """The skyline over a strip of width 1 (floor at ``y = 0``).

    Segments are stored as three parallel float lists (start, width,
    height), kept sorted by start and fully merged (no two adjacent
    segments at equal height within tolerance).  All tolerance decisions
    use :mod:`repro.core.tol` semantics, inlined on the hot paths.
    """

    __slots__ = ("_xs", "_ws", "_ys")

    def __init__(self) -> None:
        self._xs: list[float] = [0.0]
        self._ws: list[float] = [1.0]
        self._ys: list[float] = [0.0]

    # ------------------------------------------------------------------
    def segments(self) -> list[SkySegment]:
        """Current segments, left to right."""
        return [SkySegment(x, w, y) for x, w, y in zip(self._xs, self._ws, self._ys)]

    def __iter__(self) -> Iterator[SkySegment]:
        return iter(self.segments())

    @property
    def max_y(self) -> float:
        """Highest skyline level."""
        return max(self._ys)

    @property
    def min_y(self) -> float:
        """Lowest skyline level."""
        return min(self._ys)

    # ------------------------------------------------------------------
    def _window_start(self, left: float) -> int:
        """Index of the first segment that may overlap ``(left, ...)``:
        the last segment whose start is ``<= left``, walked further left
        while predecessors still protrude past ``left``."""
        xs, ws = self._xs, self._ws
        j = bisect_right(xs, left)
        while j > 0 and xs[j - 1] + ws[j - 1] > left:
            j -= 1
        return j

    def support_y(self, x: float, width: float) -> float:
        """Lowest ``y`` at which a width-``width`` rectangle with left edge at
        ``x`` can rest: the max skyline height over ``[x, x+width)``.

        Raises :class:`InvalidPlacementError` when the x-range leaves the
        strip (beyond tolerance).
        """
        atol = _ATOL
        if x < -atol or x + width > 1.0 + atol:
            raise InvalidPlacementError(f"x-range [{x}, {x + width}] outside the strip")
        xs, ws, ys = self._xs, self._ws, self._ys
        left = x + atol
        right = x + width - atol
        y = 0.0
        for k in range(self._window_start(left), len(xs)):
            xk = xs[k]
            if xk >= right:
                break
            if xk + ws[k] > left and ys[k] > y:
                y = ys[k]
        return y

    def _candidate_xs(self, width: float) -> list[float]:
        """The sorted candidate left edges for a width-``width`` rectangle:
        segment starts, right-flush positions, and the two strip walls —
        each clamped into ``[0, 1 - width]`` exactly as the reference
        kernel's ``tol.clamp`` does (duplicates retained; they are
        harmless to the sweep)."""
        xs, ws = self._xs, self._ws
        atol = _ATOL
        lim = 1.0 - width
        cands: list[float] = []
        ap = cands.append
        for k in range(len(xs)):
            x = xs[k]
            if x + width <= 1.0 + atol:
                ap(x if x <= lim else lim)
            xr = x + ws[k] - width
            if xr >= -atol:
                if xr < 0.0:
                    xr = 0.0
                ap(xr if xr <= lim else lim)
        if width <= 1.0 + atol:
            # tol.clamp(0, 0, lim) and tol.clamp(lim, 0, lim) respectively.
            ap(0.0 if lim >= 0.0 else lim)
            ap(lim if lim >= 0.0 else 0.0)
        cands.sort()
        return cands

    def candidate_positions(self, width: float) -> list[tuple[float, float]]:
        """Candidate ``(x, y)`` placements for a width-``width`` rectangle.

        Candidates are left edges flush with segment starts, plus right
        edges flush with segment ends and the strip's right wall; each is
        paired with its support height.  Every "bottom-left stable"
        position is included, which is what both the BL heuristic and the
        exact solver branch over.  Positions are returned sorted by ``x``
        with exact duplicates removed.
        """
        seen: set[float] = set()
        out: list[tuple[float, float]] = []
        for x, y in self._sweep(width):
            if x not in seen:
                seen.add(x)
                out.append((x, y))
        return out

    def _sweep(self, width: float) -> Iterator[tuple[float, float]]:
        """Yield ``(x, support)`` for every candidate in ascending ``x``.

        One pass: a two-pointer window over the segment arrays with a
        monotonic deque holding the indices of potential maxima, so the
        whole sweep costs ``O(m)`` amortized (plus the candidate sort).
        """
        xs, ws, ys = self._xs, self._ws, self._ys
        m = len(xs)
        atol = _ATOL
        wa = width - atol
        hi = 0
        dq = [0] * m  # ring-free deque: dq[head:ntail] holds candidate maxima
        head = ntail = 0
        for x in self._candidate_xs(width):
            right = x + wa
            while hi < m and xs[hi] < right:
                yk = ys[hi]
                while ntail > head and ys[dq[ntail - 1]] <= yk:
                    ntail -= 1
                dq[ntail] = hi
                ntail += 1
                hi += 1
            left = x + atol
            while head < ntail:
                j = dq[head]
                if xs[j] + ws[j] <= left:
                    head += 1
                else:
                    break
            yield x, (ys[dq[head]] if head < ntail else 0.0)

    def lowest_position(self, width: float) -> tuple[float, float]:
        """Bottom-left rule: the candidate with minimal ``y``, ties broken by
        minimal ``x``.

        Fast path: the leftmost lowest segment that the rectangle fits
        inside is the answer whenever it exists (any candidate's support is
        the max over the segments its window overlaps, hence ``>= min_y``
        everywhere and ``== min_y`` only inside a lowest segment).  The
        full sweep only runs when no lowest segment fits, and even then
        stops early once a support at the floor of what remains is found.

        On the ``compiled`` kernel tier the whole procedure (fast path,
        candidate generation, deque sweep — predicates verbatim) runs as
        one ``@njit`` call over array copies of the segment columns; the
        returned ``(x, y)`` is bit-identical.
        """
        if len(self._xs) >= _COMPILED_MIN_SEGS and _kernels.use_compiled():
            from ..kernels.compiled import skyline_lowest

            found, x, y = skyline_lowest(
                np.array(self._xs), np.array(self._ws), np.array(self._ys),
                width, _ATOL,
            )
            if not found:
                raise ValueError("no candidate position: width exceeds the strip")
            return float(x), float(y)
        xs, ws, ys = self._xs, self._ws, self._ys
        m = len(xs)
        atol = _ATOL
        lim = 1.0 - width
        ymin = min(ys)
        if lim >= 0.0 and width > 2.0 * atol:
            k = ys.index(ymin)
            while True:
                best = self._fit_in_segment(k, width, lim)
                if best is not None:
                    return best, ymin
                try:
                    k = ys.index(ymin, k + 1)
                except ValueError:
                    break
        best_x = best_y = None
        for x, y in self._sweep(width):
            if best_y is None or y < best_y:
                best_x, best_y = x, y
                if y <= ymin:
                    break  # no candidate can rest below the lowest segment
        if best_y is None:
            # Mirrors the reference kernel: min() over an empty candidate
            # list (width beyond the strip) raises ValueError.
            raise ValueError("no candidate position: width exceeds the strip")
        return best_x, best_y

    def _fit_in_segment(self, k: int, width: float, lim: float) -> float | None:
        """The leftmost candidate whose support window lies inside segment
        ``k`` alone (so its support equals ``ys[k]``), or ``None``.

        Both reference candidates anchored to the segment are tried — the
        left edge ``xs[k]`` and the right-flush ``x2[k] - width`` (which
        can land a hair *left* of ``xs[k]`` when the widths differ by less
        than the tolerance) — with the reference kernel's exact
        inclusion/exclusion predicates at the clamped position.
        """
        xs, ws = self._xs, self._ws
        m = len(xs)
        atol = _ATOL
        xk = xs[k]
        if ws[k] <= atol:  # the segment excludes itself from its own window
            return None
        best: float | None = None
        if (
            xk <= lim
            and (k + 1 >= m or xs[k + 1] >= xk + width - atol)
            and (k == 0 or xs[k - 1] + ws[k - 1] <= xk + atol)
        ):
            best = xk
        xr = xk + ws[k] - width
        if xr >= -atol:
            if xr < 0.0:
                xr = 0.0
            if xr > lim:
                xr = lim
            if (
                (best is None or xr < best)
                and xk + ws[k] > xr + atol          # window includes k ...
                and xk < xr + width - atol
                and (k + 1 >= m or xs[k + 1] >= xr + width - atol)  # ... and only k
                and (k == 0 or xs[k - 1] + ws[k - 1] <= xr + atol)
            ):
                best = xr
        return best

    # ------------------------------------------------------------------
    def place(self, x: float, width: float, height: float) -> float:
        """Rest a ``width x height`` rectangle with left edge at ``x`` on the
        skyline; returns the ``y`` it lands at and raises the envelope.

        Only the segments overlapping ``[x, x+width)`` (located by
        bisection) are rewritten; the replacement window is re-merged with
        its immediate neighbours, which preserves the fully-merged
        invariant without touching the rest of the envelope.
        """
        atol = _ATOL
        if x < -atol or x + width > 1.0 + atol:
            raise InvalidPlacementError(f"x-range [{x}, {x + width}] outside the strip")
        xs, ws, ys = self._xs, self._ws, self._ys
        m = len(xs)
        left = x + atol
        right = x + width - atol
        j = self._window_start(left)
        # Support over the affected window (same scan as support_y).
        y = 0.0
        k2 = j
        while k2 < m and xs[k2] < right:
            if xs[k2] + ws[k2] > left and ys[k2] > y:
                y = ys[k2]
            k2 += 1
        top = y + height
        x2_new = x + width

        # Rebuild the affected window [j, k2): untouched slivers keep their
        # place, overlapped segments leave left/right remainders, and the
        # new segment lands in sorted position.
        out_x: list[float] = []
        out_w: list[float] = []
        out_y: list[float] = []
        placed = False
        for k in range(j, k2):
            xk, wk, yk = xs[k], ws[k], ys[k]
            if xk + wk <= left or xk >= right:
                if not placed and xk > x:
                    out_x.append(x); out_w.append(width); out_y.append(top)
                    placed = True
                out_x.append(xk); out_w.append(wk); out_y.append(yk)
                continue
            if xk < x - atol:
                out_x.append(xk); out_w.append(x - xk); out_y.append(yk)
            if not placed:
                out_x.append(x); out_w.append(width); out_y.append(top)
                placed = True
            if xk + wk > x2_new + atol:
                out_x.append(x2_new); out_w.append(xk + wk - x2_new); out_y.append(yk)
        if not placed:
            out_x.append(x); out_w.append(width); out_y.append(top)

        # Merge locally, including one untouched neighbour on each side.
        lo = j - 1 if j > 0 else j
        if j > 0:
            out_x.insert(0, xs[lo]); out_w.insert(0, ws[lo]); out_y.insert(0, ys[lo])
        if k2 < m:
            out_x.append(xs[k2]); out_w.append(ws[k2]); out_y.append(ys[k2])
        mx, mw, my = [out_x[0]], [out_w[0]], [out_y[0]]
        for k in range(1, len(out_x)):
            if abs(my[-1] - out_y[k]) <= atol and abs(mx[-1] + mw[-1] - out_x[k]) <= atol:
                mw[-1] += out_w[k]
            else:
                mx.append(out_x[k]); mw.append(out_w[k]); my.append(out_y[k])
        hi_excl = k2 + 1 if k2 < m else k2
        xs[lo:hi_excl] = mx
        ws[lo:hi_excl] = mw
        ys[lo:hi_excl] = my
        return y

    def waste_below(self, level: float) -> float:
        """Area of the region under ``level`` but above the skyline — the
        holes a level-based packer has committed to waste."""
        return sum(
            (level - y) * w for w, y in zip(self._ws, self._ys) if level > y
        )
