"""Skyline data structure for bottom-left style packing.

A *skyline* is a piecewise-constant upper envelope of the rectangles placed
so far: a list of maximal segments ``(x, width, y)`` partitioning ``[0, 1]``.
It supports the two operations bottom-left packers and the exact
branch-and-bound solver need:

* enumerate candidate positions for a width-``w`` rectangle (the classic
  "corner points" — left edge flush with a segment boundary), each with the
  lowest feasible ``y`` there;
* commit a placement, merging segments.

The structure is deliberately simple (sorted list, linear scans): packing a
few thousand rectangles is instantaneous and clarity wins per the project's
performance posture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core import tol
from ..core.errors import InvalidPlacementError

__all__ = ["Skyline", "SkySegment"]


@dataclass(frozen=True, slots=True)
class SkySegment:
    """Maximal horizontal segment of the skyline at height ``y``."""

    x: float
    width: float
    y: float

    @property
    def x2(self) -> float:
        return self.x + self.width


class Skyline:
    """The skyline over a strip of width 1 (floor at ``y = 0``)."""

    __slots__ = ("_segs",)

    def __init__(self) -> None:
        self._segs: list[SkySegment] = [SkySegment(0.0, 1.0, 0.0)]

    # ------------------------------------------------------------------
    def segments(self) -> list[SkySegment]:
        """Current segments, left to right."""
        return list(self._segs)

    def __iter__(self) -> Iterator[SkySegment]:
        return iter(self._segs)

    @property
    def max_y(self) -> float:
        """Highest skyline level."""
        return max(s.y for s in self._segs)

    @property
    def min_y(self) -> float:
        """Lowest skyline level."""
        return min(s.y for s in self._segs)

    # ------------------------------------------------------------------
    def support_y(self, x: float, width: float) -> float:
        """Lowest ``y`` at which a width-``width`` rectangle with left edge at
        ``x`` can rest: the max skyline height over ``[x, x+width)``."""
        if tol.lt(x, 0.0) or tol.gt(x + width, 1.0):
            raise InvalidPlacementError(f"x-range [{x}, {x + width}] outside the strip")
        y = 0.0
        for s in self._segs:
            if tol.leq(s.x2, x) or tol.geq(s.x, x + width):
                continue
            y = max(y, s.y)
        return y

    def candidate_positions(self, width: float) -> list[tuple[float, float]]:
        """Candidate ``(x, y)`` placements for a width-``width`` rectangle.

        Candidates are left edges flush with segment starts, plus right edge
        flush with the strip's right wall; each paired with its support
        height.  Every "bottom-left stable" position is included, which is
        what both the BL heuristic and the exact solver branch over.
        """
        xs: set[float] = set()
        for s in self._segs:
            if tol.leq(s.x + width, 1.0):
                xs.add(s.x)
            # right-flush against this segment's right end
            x_right = s.x2 - width
            if tol.geq(x_right, 0.0):
                xs.add(max(0.0, x_right))
        if tol.leq(width, 1.0):
            xs.add(0.0)
            xs.add(1.0 - width)
        out = []
        for x in sorted(xs):
            x = tol.clamp(x, 0.0, 1.0 - width)
            out.append((x, self.support_y(x, width)))
        return out

    def lowest_position(self, width: float) -> tuple[float, float]:
        """Bottom-left rule: the candidate with minimal ``y``, ties broken by
        minimal ``x``."""
        cands = self.candidate_positions(width)
        return min(cands, key=lambda p: (p[1], p[0]))

    # ------------------------------------------------------------------
    def place(self, x: float, width: float, height: float) -> float:
        """Rest a ``width x height`` rectangle with left edge at ``x`` on the
        skyline; returns the ``y`` it lands at and raises the envelope."""
        y = self.support_y(x, width)
        top = y + height
        new: list[SkySegment] = []
        for s in self._segs:
            if tol.leq(s.x2, x) or tol.geq(s.x, x + width):
                new.append(s)
                continue
            # left remainder
            if tol.lt(s.x, x):
                new.append(SkySegment(s.x, x - s.x, s.y))
            # right remainder
            if tol.gt(s.x2, x + width):
                new.append(SkySegment(x + width, s.x2 - (x + width), s.y))
        new.append(SkySegment(x, width, top))
        new.sort(key=lambda s: s.x)
        self._segs = _merge_adjacent(new)
        return y

    def waste_below(self, level: float) -> float:
        """Area of the region under ``level`` but above the skyline — the
        holes a level-based packer has committed to waste."""
        return sum(max(0.0, level - s.y) * s.width for s in self._segs)


def _merge_adjacent(segs: list[SkySegment]) -> list[SkySegment]:
    """Merge consecutive segments at equal height (within tolerance)."""
    merged: list[SkySegment] = []
    for s in segs:
        if merged and tol.eq(merged[-1].y, s.y) and tol.eq(merged[-1].x2, s.x):
            last = merged.pop()
            merged.append(SkySegment(last.x, last.width + s.width, last.y))
        else:
            merged.append(s)
    return merged
