"""``python -m repro`` dispatches to :func:`repro.cli.main`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
