"""Content-addressed result cache: thread-safe LRU over response bytes.

The cache maps :func:`repro.core.serialize.result_key` strings to the
*serialised* response payload (the ``SolveReport`` + placement JSON the
server would send), not to live report objects:

* byte values make the size budget exact — the cache holds at most
  ``max_bytes`` of payload, measured in the same units the network sends;
* a repeated request is served the *same bytes* as the first one, which is
  what makes cached responses byte-identical by construction;
* values are opaque here, so the cache also stores portfolio responses or
  any future endpoint's payloads without schema knowledge.

Eviction is LRU by access order.  With a ``spill_dir``, evicted entries
are written to disk (one ``<sha256(key)>.json`` file each) and a later
``get`` quietly promotes them back into memory — a warm restart directory
doubles as a second cache tier.  Spill files carry an integrity header
(``repro-spill/1 <sha256-of-payload>``): a truncated or garbage file —
torn write, full disk, stray editor — fails verification and is treated
as a *miss* (recompute + overwrite), never an error.  All counters needed
by ``GET /metrics`` (hits, misses, evictions, spills, spill hits,
corruptions) are maintained under the same lock that guards the map, so a
stats snapshot is always consistent.

The two disk seams (:meth:`ResultCache.get`'s spill read and
:meth:`ResultCache._spill`) accept a
:class:`~repro.service.faults.FaultInjector`, so the chaos suite can
schedule I/O errors, disk-full writes, and corrupted reads
deterministically.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core.errors import InvalidInstanceError
from .faults import FaultInjector, as_injector

__all__ = [
    "CacheStats",
    "ResultCache",
    "NeighborIndex",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_NEIGHBOR_ENTRIES",
]

#: Default in-memory budget: plenty for ~10k typical solve payloads.
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

#: Integrity-header magic of the spill file format.
SPILL_MAGIC = b"repro-spill/1"


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the cache counters (one lock acquisition)."""

    hits: int
    misses: int
    evictions: int
    spills: int
    spill_hits: int
    corruptions: int
    entries: int
    bytes: int
    max_bytes: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        out = asdict(self)
        out["hit_rate"] = self.hit_rate
        return out


class ResultCache:
    """Thread-safe LRU byte cache with a size budget and optional disk spill.

    ``max_bytes`` bounds the summed length of cached values (keys are not
    charged: they are fixed-size fingerprints, two orders of magnitude
    smaller than any payload).  ``max_bytes=0`` disables the in-memory
    tier entirely — with a ``spill_dir`` that degrades to a disk-only
    cache, without one to a no-op that still counts misses.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        *,
        spill_dir: Path | str | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if max_bytes < 0:
            raise InvalidInstanceError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
        self._faults = as_injector(faults)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._spills = 0
        self._spill_hits = 0
        self._corruptions = 0

    # -- key/value plumbing --------------------------------------------

    def _spill_path(self, key: str) -> Path:
        """Filesystem-safe location for ``key`` (keys contain ``|``)."""
        assert self.spill_dir is not None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.spill_dir / f"{digest}.json"

    @staticmethod
    def _frame(payload: bytes) -> bytes:
        """Wrap ``payload`` in the integrity header a spill file carries."""
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        return SPILL_MAGIC + b" " + digest + b"\n" + payload

    @staticmethod
    def _unframe(raw: bytes) -> bytes | None:
        """The verified payload of a spill file, or ``None`` if the file
        is truncated, garbage, or from an unframed format."""
        head, sep, payload = raw.partition(b"\n")
        if not sep:
            return None
        parts = head.split()
        if len(parts) != 2 or parts[0] != SPILL_MAGIC:
            return None
        if hashlib.sha256(payload).hexdigest().encode("ascii") != parts[1]:
            return None
        return payload

    def _spill(self, key: str, payload: bytes) -> None:
        """Write one evicted/oversized payload to disk (no lock held).

        Spill failures (full disk, permissions — or their injected
        equivalents) drop the entry silently — the cache is an
        accelerator, never a source of truth, so losing an entry only
        costs a future re-solve.  Concurrent writers of the same key
        write identical content, so last-writer-wins is safe.
        """
        assert self.spill_dir is not None
        try:
            if self._faults is not None:
                self._faults.fire_sync("cache.spill_write")
            self._spill_path(key).write_bytes(self._frame(payload))
        except OSError:
            return
        with self._lock:
            self._spills += 1

    # -- public API -----------------------------------------------------

    def get_memory(self, key: str) -> bytes | None:
        """Memory-tier-only lookup: counts a hit when found, never a miss.

        The serving hot path probes this inline (it is a lock + dict
        lookup) and only falls to the full :meth:`get` — which may block
        on spill-tier disk I/O — when it returns ``None``.
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            return payload

    def get(self, key: str) -> bytes | None:
        """The cached payload for ``key``, or ``None`` on a miss.

        A memory hit refreshes LRU recency; a disk hit (spilled entry)
        promotes the payload back into the memory tier.  Disk I/O happens
        outside the lock, so a slow spill device never serialises the
        memory-tier hot path behind it.
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return payload
        if self.spill_dir is not None:
            kinds = (
                {spec.kind for spec in self._faults.check("cache.spill_read")}
                if self._faults is not None
                else set()
            )
            raw: bytes | None = None
            if "io_error" not in kinds:
                try:
                    raw = self._spill_path(key).read_bytes()
                except OSError:
                    raw = None
            if raw is not None and "corrupt" in kinds:
                raw = raw[: len(raw) // 2]
            if raw is not None:
                payload = self._unframe(raw)
                if payload is None:
                    # Torn write / garbage / stale format: a corrupt spill
                    # file is a miss, never an error.  Drop it so the
                    # recomputed result overwrites it cleanly.
                    with self._lock:
                        self._corruptions += 1
                    try:
                        self._spill_path(key).unlink()
                    except OSError:
                        pass
                else:
                    with self._lock:
                        self._spill_hits += 1
                        self._hits += 1
                    if len(payload) <= self.max_bytes:
                        # Promote into memory; an entry the budget can't
                        # hold (including the disk-only max_bytes=0
                        # configuration) stays on disk — re-spilling
                        # identical bytes would turn every disk hit into
                        # a redundant write.
                        self.put(key, payload)
                    return payload
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: str, payload: bytes) -> None:
        """Insert (or refresh) ``key`` → ``payload``, evicting LRU entries
        until the memory tier fits its budget again.

        A payload larger than the whole budget bypasses memory and goes
        straight to disk (when configured) — admitting it would evict
        everything else for one entry that gets evicted next anyway.
        Evicted entries are collected under the lock and spilled after it
        is released.
        """
        if not isinstance(payload, bytes):
            raise InvalidInstanceError(
                f"cache values are bytes, got {type(payload).__name__}"
            )
        if len(payload) > self.max_bytes:
            with self._lock:
                # An oversized refresh must not leave a stale smaller
                # value behind in the memory tier.
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= len(old)
            if self.spill_dir is not None:
                self._spill(key, payload)
            return
        evicted: list[tuple[str, bytes]] = []
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = payload
            self._bytes += len(payload)
            while self._bytes > self.max_bytes:
                victim_key, victim = self._entries.popitem(last=False)
                self._bytes -= len(victim)
                self._evictions += 1
                evicted.append((victim_key, victim))
        if self.spill_dir is not None:
            for victim_key, victim in evicted:
                self._spill(victim_key, victim)

    def stats(self) -> CacheStats:
        """Consistent counter snapshot (for ``GET /metrics`` and tests)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                spills=self._spills,
                spill_hits=self._spill_hits,
                corruptions=self._corruptions,
                entries=len(self._entries),
                bytes=self._bytes,
                max_bytes=self.max_bytes,
            )

    def clear(self) -> None:
        """Drop the memory tier (spilled files are left on disk)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership in the *memory* tier, without touching counters."""
        with self._lock:
            return key in self._entries


#: Default bound on the neighbor index: each entry stores one instance
#: dict (a few KB for typical request sizes), so 1024 entries stay well
#: under the result cache's own budget.
DEFAULT_NEIGHBOR_ENTRIES = 1024


class NeighborIndex:
    """Locality-sensitive index from LSH band keys to cached solves.

    The index answers the warm-start question — "which cached instance is
    nearest to this request?" — in O(1): an entry is registered under each
    band key of its :func:`repro.core.serialize.instance_sketch`, scoped
    by a *bucket* string (the ``spec_name|canonical_params`` suffix of the
    result key, so a neighbor is only ever reported for the same solver
    configuration).  A lookup unions the band posting sets and returns the
    candidate sharing the most bands, most-recently-added winning ties —
    both the posting sets and the tie-break are deterministic, which keeps
    warm-start provenance reproducible across identical request orders.

    Entries hold the *instance dict* (not the payload): the payload lives
    in the :class:`ResultCache` under the entry's result key and is
    re-fetched at repair time, so an evicted payload simply downgrades a
    warm start to a cold solve.  Bounded LRU by insertion refresh;
    thread-safe.
    """

    def __init__(self, max_entries: int = DEFAULT_NEIGHBOR_ENTRIES) -> None:
        if max_entries < 0:
            raise InvalidInstanceError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        # key -> (bucket, sketch, instance dict); insertion order = recency.
        self._entries: OrderedDict[str, tuple[str, tuple[str, ...], dict]] = OrderedDict()
        # (bucket, band) -> keys registered under that band.
        self._bands: dict[tuple[str, str], set[str]] = {}

    def _drop_locked(self, key: str) -> None:
        bucket, sketch, _ = self._entries.pop(key)
        for band in sketch:
            posting = self._bands.get((bucket, band))
            if posting is not None:
                posting.discard(key)
                if not posting:
                    del self._bands[(bucket, band)]

    def add(
        self,
        key: str,
        *,
        bucket: str,
        sketch: tuple[str, ...],
        instance: dict,
    ) -> None:
        """Register ``key`` (a result key) under its sketch bands."""
        if self.max_entries == 0:
            return
        with self._lock:
            if key in self._entries:
                self._drop_locked(key)
            self._entries[key] = (bucket, tuple(sketch), instance)
            for band in sketch:
                self._bands.setdefault((bucket, band), set()).add(key)
            while len(self._entries) > self.max_entries:
                self._drop_locked(next(iter(self._entries)))

    def nearest(
        self,
        *,
        bucket: str,
        sketch: tuple[str, ...],
        exclude: str | None = None,
    ) -> tuple[str, dict] | None:
        """Best ``(result_key, instance_dict)`` sharing a band, or ``None``.

        ``exclude`` skips the requester's own key so a re-submitted
        instance never reports itself as its neighbor.
        """
        with self._lock:
            overlap: dict[str, int] = {}
            for band in sketch:
                for key in self._bands.get((bucket, band), ()):
                    if key != exclude:
                        overlap[key] = overlap.get(key, 0) + 1
            if not overlap:
                return None
            recency = {key: i for i, key in enumerate(self._entries)}
            best = max(overlap, key=lambda key: (overlap[key], recency[key]))
            _, _, instance = self._entries[best]
            return best, instance

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
