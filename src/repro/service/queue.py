"""Bounded request queue with micro-batching over the engine's executor.

The serving hot path must not solve requests one interpreter round-trip at
a time: arrivals that land close together are drained as one *micro-batch*
(up to ``max_batch`` requests, waiting at most ``max_wait_s`` after the
first), grouped by ``(algorithm, params)`` compatibility, and fanned out
through :func:`repro.engine.batch.solve_many` — the same pluggable
``serial | thread | process`` :class:`~repro.engine.batch.Executor` seam
the batch CLI uses.  Because ``solve_many`` is bit-identical to looping
:func:`repro.engine.run` (pinned by the executor determinism suite), a
batched request returns exactly the report a direct solve would have.

Backpressure is explicit: the internal queue is bounded, and a submit
against a full queue raises :class:`BackpressureError` immediately instead
of blocking the caller — the server maps it to HTTP 503 so load shedding
is visible to clients rather than silently queueing unbounded work.

Shutdown comes in two flavours: :meth:`MicroBatcher.stop` halts the drain
thread and *fails* whatever is still queued (crash-stop semantics), while
:meth:`MicroBatcher.drain` first refuses new submits, then waits for every
already-accepted request to be answered before stopping — the building
block behind ``repro serve``'s graceful SIGTERM handling.

Results travel on :class:`concurrent.futures.Future` objects, which both
plain threads (the load generator, tests) and the asyncio server (via
``asyncio.wrap_future``) can await.
"""

from __future__ import annotations

import json
import queue as _queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.errors import InvalidInstanceError, ReproError
from ..core.instance import StripPackingInstance
from ..obs import recorder
from ..obs.trace import TraceContext, current_trace
from .faults import FaultInjector

__all__ = ["BackpressureError", "QueueStats", "SolveRequest", "MicroBatcher"]


class BackpressureError(ReproError):
    """The request queue is full (or shutting down); retry later."""


@dataclass(frozen=True)
class SolveRequest:
    """One queued solve: the engine-run arguments plus its result future."""

    instance: StripPackingInstance
    algorithm: str | None
    params: Mapping[str, Any] | None
    future: Future
    enqueued_at: float
    #: The submitting request's trace, captured at submit time — the
    #: batcher drains on its own thread, where the request contextvar is
    #: not visible, so the trace must ride the queue entry itself.
    trace: TraceContext | None = None

    @property
    def group_key(self) -> tuple[str | None, str]:
        """Requests with equal keys may share one ``solve_many`` call."""
        return (self.algorithm, json.dumps(dict(self.params or {}), sort_keys=True, default=repr))


@dataclass(frozen=True)
class QueueStats:
    """Counter snapshot for ``GET /metrics`` (one lock acquisition)."""

    depth: int
    submitted: int
    completed: int
    rejected: int
    batches: int
    max_batch: int

    @property
    def mean_batch(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "depth": self.depth,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "mean_batch": self.mean_batch,
        }


class MicroBatcher:
    """Drain a bounded queue in compatibility-grouped micro-batches.

    ``backend``/``jobs`` select the engine executor each batch fans out
    over (``None`` keeps ``solve_many``'s serial default).  ``max_batch``
    caps one drain; ``max_wait_s`` is the most extra latency a lone
    request pays waiting for company — both trade tail latency against
    throughput and surface as CLI flags on ``repro serve``.

    The worker thread is started explicitly (:meth:`start`) so unit tests
    can pre-load the queue and observe a single deterministic drain.
    """

    def __init__(
        self,
        *,
        backend: str | None = None,
        jobs: int | None = None,
        max_batch: int = 16,
        max_wait_s: float = 0.002,
        maxsize: int = 512,
        faults: FaultInjector | None = None,
    ) -> None:
        if max_batch < 1:
            raise InvalidInstanceError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise InvalidInstanceError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if maxsize < 1:
            raise InvalidInstanceError(f"maxsize must be >= 1, got {maxsize}")
        if jobs is not None and jobs < 1:
            # The legacy "jobs<=1 means serial" reading is for the batch
            # CLI's history; a service configured with jobs=0 is a typo.
            raise InvalidInstanceError(f"jobs must be >= 1, got {jobs}")
        # Resolve eagerly so a bad backend/jobs pair fails at construction
        # (CLI time), not on the first request.  The resolved executor is
        # kept: start()/stop() open and close its persistent pool, so the
        # serving hot path never pays a per-batch pool spin-up.
        from ..engine import resolve_executor

        self._executor = resolve_executor(backend, jobs)
        self._faults = faults
        self.backend = backend
        self.jobs = jobs
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._queue: _queue.Queue[SolveRequest] = _queue.Queue(maxsize=int(maxsize))
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._rejected = 0
        self._batches = 0
        self._max_batch_seen = 0
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "MicroBatcher":
        """Start the drain thread (idempotent); returns self for chaining."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._draining.clear()
            self._executor.open()
            self._thread = threading.Thread(
                target=self._drain_loop, name="repro-batcher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop draining; pending requests fail with :class:`BackpressureError`."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None
        self._fail_pending()
        self._executor.close()

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful stop: refuse new work, answer everything accepted.

        New submits fail with :class:`BackpressureError` the moment this
        is called; requests already queued keep draining through the
        worker thread until the queue's task accounting reports them all
        answered (or ``timeout`` elapses — anything still pending then
        fails through :meth:`stop`).  Without a running drain thread (unit
        tests drive :meth:`drain_once` by hand) the flush happens inline.
        """
        self._draining.set()
        deadline = time.monotonic() + timeout
        thread = self._thread
        if thread is None or not thread.is_alive():
            while self.drain_once():
                pass
        else:
            with self._queue.all_tasks_done:
                while self._queue.unfinished_tasks and time.monotonic() < deadline:
                    self._queue.all_tasks_done.wait(timeout=0.05)
        self.stop()

    def _fail_pending(self) -> None:
        """Fail everything still queued after the stop flag is up.

        Called by :meth:`stop` and by any :meth:`submit` that raced the
        flag (checked it clear, enqueued after the drain): whichever side
        runs last sees the straggler, so no future is left unresolved.
        """
        while True:
            try:
                request = self._queue.get_nowait()
            except _queue.Empty:
                break
            if not request.future.done():
                request.future.set_exception(
                    BackpressureError("request queue stopped before this solve ran")
                )
            self._queue.task_done()

    # -- submission ------------------------------------------------------

    def submit(
        self,
        instance: StripPackingInstance,
        algorithm: str | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> Future:
        """Enqueue one solve; the future resolves to its ``SolveReport``.

        Raises :class:`BackpressureError` when the queue is full or the
        batcher is stopped — callers shed load instead of blocking.
        """
        if self._stop.is_set() or self._draining.is_set():
            with self._lock:
                self._rejected += 1
            raise BackpressureError(
                "request queue is draining for shutdown"
                if self._draining.is_set() and not self._stop.is_set()
                else "request queue is stopped"
            )
        request = SolveRequest(
            instance=instance,
            algorithm=algorithm,
            params=dict(params) if params is not None else None,
            future=Future(),
            enqueued_at=time.monotonic(),
            trace=current_trace(),
        )
        with self._lock:
            # Counted before the put so `submitted >= completed` holds in
            # every stats snapshot, even mid-drain.
            self._submitted += 1
        try:
            self._queue.put_nowait(request)
        except _queue.Full:
            with self._lock:
                self._submitted -= 1
                self._rejected += 1
            raise BackpressureError(
                f"request queue is full ({self._queue.maxsize} pending)"
            ) from None
        if self._stop.is_set():
            # stop() may have drained between our check and the put; make
            # sure this request cannot dangle with an unresolved future.
            self._fail_pending()
        return request.future

    # -- introspection ---------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently queued (not yet drained into a batch)."""
        return self._queue.qsize()

    def stats(self) -> QueueStats:
        with self._lock:
            return QueueStats(
                depth=self._queue.qsize(),
                submitted=self._submitted,
                completed=self._completed,
                rejected=self._rejected,
                batches=self._batches,
                max_batch=self._max_batch_seen,
            )

    # -- the drain loop --------------------------------------------------

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except _queue.Empty:
                continue
            batch = [first]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except _queue.Empty:
                    break
            try:
                self._run_batch(batch)
            finally:
                # task_done only after the futures are resolved, so
                # drain()'s all_tasks_done wait means "answered", not
                # merely "dequeued".
                for _ in batch:
                    self._queue.task_done()

    def drain_once(self) -> int:
        """Synchronously drain up to ``max_batch`` queued requests (tests).

        Returns the number of requests drained; 0 when the queue is empty.
        """
        batch: list[SolveRequest] = []
        while len(batch) < self.max_batch:
            try:
                batch.append(self._queue.get_nowait())
            except _queue.Empty:
                break
        if batch:
            try:
                self._run_batch(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()
        return len(batch)

    def _run_batch(self, batch: list[SolveRequest]) -> None:
        """Group one drained batch by compatibility and fan each group out.

        ``solve_many(strict=False)`` turns per-request solver errors
        (unknown algorithm, variant mismatch) into error reports, so one
        bad request never poisons its batch-mates.  ``labels=[""] * n``
        keeps ``SolveReport.label`` at :func:`repro.engine.run`'s default,
        preserving report-for-report identity with a direct solve.
        """
        from ..engine import solve_many

        if self._faults is not None:
            # The drain-tick seam: a scheduled `stall` holds the batch on
            # the batcher thread — queued work ages exactly as it would
            # behind a wedged executor — without touching the futures.
            self._faults.fire_sync("queue.drain")
        with self._lock:
            self._batches += 1
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
        drained_at = time.monotonic()
        spans = recorder()
        for request in batch:
            if request.trace is not None:
                spans.record(
                    request.trace.trace_id,
                    "queue.wait",
                    request.enqueued_at,
                    drained_at - request.enqueued_at,
                    tenant=request.trace.tenant,
                )
        groups: dict[tuple[str | None, str], list[SolveRequest]] = {}
        for request in batch:
            groups.setdefault(request.group_key, []).append(request)
        for (algorithm, _), requests in groups.items():
            try:
                reports = solve_many(
                    [r.instance for r in requests],
                    algorithm,
                    params=requests[0].params,
                    executor=self._executor,
                    labels=[""] * len(requests),
                    strict=False,
                )
            except BaseException as exc:  # pragma: no cover - defensive
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(exc)
                continue
            with self._lock:
                self._completed += len(requests)
            solved_at = time.monotonic()
            for request, report in zip(requests, reports):
                if request.trace is not None:
                    # The engine's own measured wall time, anchored so the
                    # span ends where the batch's futures resolve.
                    spans.record(
                        request.trace.trace_id,
                        "engine.solve",
                        solved_at - report.wall_time,
                        report.wall_time,
                        tenant=request.trace.tenant,
                        algorithm=report.algorithm,
                    )
                if not request.future.done():
                    request.future.set_result(report)
