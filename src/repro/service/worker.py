"""Worker-process entry point for the sharded solve service.

One worker is simply a :class:`~repro.service.server.SolveServer` — the
full single-process stack (HTTP front-end, micro-batcher, two-tier result
cache) — bound to an ephemeral loopback port and owned by a
:class:`~repro.service.router.RouterServer` parent.  The router speaks
plain HTTP to it, which keeps the shard protocol identical to the public
one: every worker is independently curl-able, and the differential tests
can compare a worker's bytes against the single-process path directly.

The handshake is one message on a one-way multiprocessing pipe: the child
binds first, then sends ``{"port": ..., "pid": ...}`` (or ``{"error":
...}`` if startup failed) and closes its end.  Everything after that
happens over HTTP.

:func:`worker_main` must stay module-level and import-light so the
``spawn`` start method can pickle it by reference — the router uses
``spawn`` (never ``fork``) because it may itself live on a thread inside
a test harness or bench runner, and forking a threaded parent is a
deadlock lottery.

Lifecycle: the worker serves until SIGTERM/SIGINT, then drains — stops
accepting, answers every request its listener and queue already accepted
— and exits 0.  A worker killed hard (SIGKILL, OOM) is detected by the
router's supervisor and respawned; its shard of the key space re-routes
to ring successors in the meantime.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import Any, Mapping

__all__ = ["worker_main"]


async def _serve(worker_id: int, conn, config: Mapping[str, Any]) -> None:
    from ..obs import configure_logging, set_identity
    from .faults import FaultInjector
    from .server import SolveServer

    config = dict(config)
    # The requested kernel tier rides in the config too — worker processes
    # start from a fresh interpreter, so the parent's tier selection must
    # be re-applied here (each worker then resolves/falls back on its own).
    tier = config.pop("kernel_tier", None)
    if tier is not None:
        from .. import kernels

        kernels.set_tier(tier)
    # Observability config rides the same way: every span this process
    # records is stamped worker=<id>, and the structured-log sink matches
    # the parent's --log-format/--log-file (workers append to one file;
    # whole-line writes interleave cleanly).
    set_identity(worker_id)
    log_format = config.pop("log_format", None)
    log_file = config.pop("log_file", None)
    if log_format is not None or log_file is not None:
        import sys

        configure_logging(log_format, log_file, stream=sys.stderr if log_file is None else None)
    # A chaos plan rides inside the (picklable) worker config as a plain
    # dict; each worker builds its own injector scoped to its id, so a
    # spec with "worker": K fires only in worker K.
    plan = config.pop("fault_plan", None)
    faults = FaultInjector(plan, worker=worker_id) if plan is not None else None
    server = SolveServer(faults=faults, **config)
    try:
        bound = await server.start("127.0.0.1", 0)
    except BaseException as exc:
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
        conn.close()
        server.close()
        raise SystemExit(1)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        # The router's graceful drain sends SIGTERM; an interactive Ctrl-C
        # delivers SIGINT to the whole process group.  Either way: drain.
        loop.add_signal_handler(sig, stop.set)

    conn.send({"port": server.port, "pid": os.getpid()})
    conn.close()
    try:
        await stop.wait()
    finally:
        await server.drain(bound)


def worker_main(worker_id: int, conn, config: Mapping[str, Any]) -> None:
    """Run one solve worker until told to drain; the spawn target.

    ``conn`` is the write end of the startup pipe; ``config`` is the
    :class:`~repro.service.server.SolveServer` constructor kwargs (every
    worker of one fleet gets the same config, so a shared ``cache_dir``
    becomes the fleet's common L2 cache tier).
    """
    asyncio.run(_serve(worker_id, conn, config))
