"""Deterministic fault injection for the sharded solve service.

The service's failure guarantees ("no accepted request is lost on worker
death") are only worth what their tests exercise.  This module turns
ad-hoc SIGKILL tests into a *schedule*: a :class:`FaultPlan` is a
declarative, JSON-serialisable list of :class:`FaultSpec` entries, each
naming an injection **site** (a seam the service code calls explicitly),
a fault **kind**, and *when* to fire — the Nth traversal of that site.
Because triggering is counter-based, not clock- or rng-based, replaying
one plan against the same request sequence injects the same faults at
the same points every time; the ``seed`` only feeds the router's retry
jitter so backoff schedules are reproducible too.

Injection sites (and the module that calls them):

===================  ==================================  =======================
site                 kinds                               seam
===================  ==================================  =======================
``router.send``      ``conn_reset``, ``slow``            ``_WorkerClient.request``
``router.recv``      ``conn_reset``, ``truncate``,       ``_WorkerClient._round_trip``
                     ``slow``
``worker.spawn``     ``error``                           ``WorkerHandle.spawn``
``worker.pre_solve`` ``crash``, ``hang``, ``slow``,      ``SolveServer._solve``
                     ``error``
``worker.post_solve`` ``crash``, ``slow``                ``SolveServer._solve``
``cache.spill_read`` ``io_error``, ``corrupt``           ``ResultCache.get``
``cache.spill_write`` ``io_error``, ``disk_full``        ``ResultCache._spill``
``queue.drain``      ``stall``                           ``MicroBatcher._run_batch``
``session.create``   ``error``, ``slow``                 ``SolveServer._session_create``
``session.step``     ``crash``, ``error``, ``slow``      ``SolveServer._session_step``
===================  ==================================  =======================

A plan travels as a plain dict so it pickles through the ``spawn`` start
method: the router keeps one :class:`FaultInjector` for its own seams and
forwards the plan dict inside ``worker_config``; each worker process
builds its own injector scoped to its ``worker_id``, so a spec with
``"worker": 1`` fires only in (or toward) worker 1.

Counters are per-site and thread-safe — seams run on the event loop, on
executor threads, and on the batcher thread.  ``fired`` totals feed the
``repro_faults_injected_total`` metric.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..core.errors import InvalidInstanceError

__all__ = ["FAULT_SITES", "FaultSpec", "FaultPlan", "FaultInjector"]

#: Every legal injection site and the fault kinds it understands.
FAULT_SITES: dict[str, frozenset[str]] = {
    "router.send": frozenset({"conn_reset", "slow"}),
    "router.recv": frozenset({"conn_reset", "truncate", "slow"}),
    "worker.spawn": frozenset({"error"}),
    "worker.pre_solve": frozenset({"crash", "hang", "slow", "error"}),
    "worker.post_solve": frozenset({"crash", "slow"}),
    "cache.spill_read": frozenset({"io_error", "corrupt"}),
    "cache.spill_write": frozenset({"io_error", "disk_full"}),
    "queue.drain": frozenset({"stall"}),
    # Session-level seams: a `crash` at session.step is the canonical
    # "worker dies mid-session" scenario — the session must migrate to a
    # ring successor with zero lost steps.
    "session.create": frozenset({"error", "slow"}),
    "session.step": frozenset({"crash", "error", "slow"}),
}

#: ``hang`` sleeps this long — far past any request timeout, well short
#: of leaking a thread for the life of a long test session.
HANG_S = 300.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *site* misbehaves as *kind* on traversals
    ``after .. after + count - 1`` of that site (``count=0`` = forever).

    ``worker`` restricts the spec to one worker id: for worker-side sites
    that is the injecting process's own id, for router-side sites the id
    of the worker the call targets.  ``delay_s`` parameterises the
    ``slow`` and ``stall`` kinds.
    """

    site: str
    kind: str
    after: int = 0
    count: int = 1
    worker: int | None = None
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise InvalidInstanceError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(FAULT_SITES)}"
            )
        if self.kind not in FAULT_SITES[self.site]:
            raise InvalidInstanceError(
                f"site {self.site!r} has no kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_SITES[self.site])}"
            )
        if self.after < 0:
            raise InvalidInstanceError(f"after must be >= 0, got {self.after}")
        if self.count < 0:
            raise InvalidInstanceError(
                f"count must be >= 0 (0 = unlimited), got {self.count}"
            )
        if self.delay_s < 0:
            raise InvalidInstanceError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches(self, hit: int, worker: int | None) -> bool:
        """Does traversal number ``hit`` (0-based) of this spec's site,
        attributed to ``worker``, fall inside the firing window?"""
        if hit < self.after:
            return False
        if self.count and hit >= self.after + self.count:
            return False
        return self.worker is None or worker is None or self.worker == worker

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.after:
            out["after"] = self.after
        if self.count != 1:
            out["count"] = self.count
        if self.worker is not None:
            out["worker"] = self.worker
        if self.delay_s != 0.05:
            out["delay_s"] = self.delay_s
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(data, Mapping):
            raise InvalidInstanceError(
                f"a fault spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"site", "kind", "after", "count", "worker", "delay_s"}
        if unknown:
            raise InvalidInstanceError(f"unknown fault spec fields: {sorted(unknown)}")
        if "site" not in data or "kind" not in data:
            raise InvalidInstanceError("a fault spec needs 'site' and 'kind'")
        return cls(
            site=data["site"],
            kind=data["kind"],
            after=int(data.get("after", 0)),
            count=int(data.get("count", 1)),
            worker=None if data.get("worker") is None else int(data["worker"]),
            delay_s=float(data.get("delay_s", 0.05)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule: specs plus the jitter seed.

    The canonical JSON shape (what :meth:`dumps` writes and ``repro
    chaos PLAN.json`` reads)::

        {"seed": 7,
         "faults": [{"site": "worker.pre_solve", "kind": "crash",
                     "after": 3, "worker": 0}]}
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "faults": [spec.to_dict() for spec in self.faults]}

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | "FaultPlan") -> "FaultPlan":
        if isinstance(data, FaultPlan):
            return data
        if not isinstance(data, Mapping):
            raise InvalidInstanceError(
                f"a fault plan must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise InvalidInstanceError(f"unknown fault plan fields: {sorted(unknown)}")
        faults = data.get("faults", [])
        if not isinstance(faults, Iterable) or isinstance(faults, (str, bytes)):
            raise InvalidInstanceError("'faults' must be a list of fault specs")
        return cls(
            faults=tuple(FaultSpec.from_dict(spec) for spec in faults),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def load(cls, path: Path | str) -> "FaultPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise InvalidInstanceError(f"cannot read fault plan {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidInstanceError(
                f"malformed JSON in fault plan {path}: {exc}"
            ) from exc
        return cls.from_dict(data)


@dataclass
class _SiteState:
    hits: int = 0
    fired: int = 0


class FaultInjector:
    """Deterministic, thread-safe trigger engine for one process.

    ``worker`` scopes the injector: a worker process passes its own id so
    worker-restricted specs fire only there; the router passes ``None``
    and attributes each hit to the worker it targets via the ``worker=``
    argument of :meth:`check`.
    """

    def __init__(self, plan: FaultPlan | Mapping[str, Any], *, worker: int | None = None) -> None:
        self.plan = FaultPlan.from_dict(plan)
        self.worker = worker
        self._lock = threading.Lock()
        self._sites: dict[str, _SiteState] = {}

    def check(self, site: str, *, worker: int | None = None) -> list[FaultSpec]:
        """Count one traversal of ``site`` and return the specs it fires.

        The traversal counter advances whether or not anything fires, so
        a worker-restricted spec still sees a stable global sequence
        number for its site.  ``worker`` defaults to the injector's own
        scope (worker-side seams never pass it; router-side seams pass
        the target worker id).
        """
        if site not in FAULT_SITES:
            raise InvalidInstanceError(f"unknown fault site {site!r}")
        who = self.worker if worker is None else worker
        with self._lock:
            state = self._sites.setdefault(site, _SiteState())
            hit = state.hits
            state.hits += 1
            fired = [
                spec
                for spec in self.plan.faults
                if spec.site == site and spec.matches(hit, who)
            ]
            state.fired += len(fired)
        # One structured event per injected fault, emitted outside the
        # lock and before the fault acts — a `crash` kind still logs.
        if fired:
            from ..obs import get_logger

            for spec in fired:
                get_logger().event(
                    "fault_injected",
                    logger="repro.service.faults",
                    site=site,
                    kind=spec.kind,
                    hit=hit,
                    worker="" if who is None else str(who),
                )
        return fired

    def fire_sync(self, site: str, *, worker: int | None = None) -> None:
        """Check ``site`` and apply its faults synchronously (thread seams).

        ``slow``/``stall``/``hang`` block the calling thread; ``crash``
        hard-kills the process (``os._exit`` — exactly what a SIGKILL'd
        or OOM'd worker looks like from outside); ``error``/``io_error``/
        ``disk_full`` raise ``OSError``; ``conn_reset`` raises
        ``ConnectionResetError``.  ``corrupt``/``truncate`` have no
        generic synchronous meaning — their seams consume the spec
        through :meth:`check` and mangle their own data.
        """
        for spec in self.check(site, worker=worker):
            if spec.kind in ("slow", "stall"):
                time.sleep(spec.delay_s)
            elif spec.kind == "hang":
                time.sleep(HANG_S)
            elif spec.kind == "crash":
                import os

                os._exit(1)
            elif spec.kind == "disk_full":
                raise OSError(28, f"injected disk-full at {site}")  # ENOSPC
            elif spec.kind in ("error", "io_error"):
                raise OSError(5, f"injected I/O error at {site}")  # EIO
            elif spec.kind == "conn_reset":
                raise ConnectionResetError(f"injected connection reset at {site}")

    @property
    def fired(self) -> int:
        """Total faults injected so far (feeds ``repro_faults_injected_total``)."""
        with self._lock:
            return sum(state.fired for state in self._sites.values())

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-site hit/fired counters (one lock acquisition)."""
        with self._lock:
            return {
                site: {"hits": state.hits, "fired": state.fired}
                for site, state in sorted(self._sites.items())
            }


def as_injector(
    faults: "FaultInjector | FaultPlan | Mapping[str, Any] | None",
    *,
    worker: int | None = None,
) -> FaultInjector | None:
    """Normalise the ``faults=`` constructor argument the seams accept:
    ``None`` passes through, an injector is used as-is, a plan (object or
    dict) gets its own injector scoped to ``worker``."""
    if faults is None or isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(FaultPlan.from_dict(faults), worker=worker)
