"""Chaos scenario runner: replay a fault plan, verify the service invariants.

``repro chaos PLAN.json`` (and the programmatic :func:`run_chaos`) stands
up an in-process fleet with the plan armed, drives a deterministic
closed-loop workload through it, and checks the promises the service
makes about failures:

1. **nothing lost** — every accepted request is answered 200 (failover,
   retries, and respawn absorb the injected faults; a 5xx or transport
   error to the client is a violation);
2. **byte-identical** — each answer equals a fault-free solve of the
   same payload on every deterministic field (``wall_time``, the one
   measured-not-derived field, is normalised out);
3. **recovery** — ``/healthz`` reports ``ok`` again once the injected
   storm has passed (suppress with ``expect_final_ok=False`` for plans
   that deliberately exhaust ``max_restarts``).

The baseline comes straight from :func:`repro.engine.run` +
:func:`~repro.service.server.encode_report` — the exact computation a
worker performs — so no second fleet is needed and the comparison cannot
be polluted by the very faults under test.

Determinism: payloads are seeded (:func:`repro.service.loadgen.
solve_payloads`), fault triggering is traversal-counter-based
(:mod:`repro.service.faults`), and the router's backoff jitter derives
from the plan's ``seed`` — replaying one plan replays one scenario.

:func:`run_session_chaos` applies the same discipline to the long-lived
session API: each session replays a deterministic growing-prefix stream
(:func:`repro.service.loadgen.session_step_bodies`) through ``POST
/session/{id}/step`` while the plan kills workers mid-session, and the
invariants become *zero lost steps* (the router's soft session registry
re-creates the session on the failover worker) plus the same
byte-identity and recovery checks.  Workers run with warm-starting off —
its default — so every step's answer must equal the cold baseline.
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .faults import FaultPlan

__all__ = ["ChaosReport", "run_chaos", "run_session_chaos"]


@dataclass
class ChaosReport:
    """The outcome of one chaos run; ``passed`` iff no invariant broke."""

    plan: dict
    workers: int
    requests: int
    answered: int
    lost: int
    mismatched: int
    retries: int
    request_retries: int
    faults_injected: int
    final_health: str
    recovered: bool
    violations: list[str] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan,
            "workers": self.workers,
            "requests": self.requests,
            "answered": self.answered,
            "lost": self.lost,
            "mismatched": self.mismatched,
            "retries": self.retries,
            "request_retries": self.request_retries,
            "faults_injected": self.faults_injected,
            "final_health": self.final_health,
            "recovered": self.recovered,
            "violations": list(self.violations),
            "duration_s": self.duration_s,
            "passed": self.passed,
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"chaos: {self.requests} requests over {self.workers} worker(s), "
            f"{self.faults_injected} fault(s) injected",
            f"answered={self.answered} lost={self.lost} "
            f"mismatched={self.mismatched} retries={self.request_retries} "
            f"failovers={self.retries}",
            f"final /healthz: {self.final_health}",
        ]
        if self.passed:
            lines.append("PASS: zero lost requests, byte-identical payloads")
        else:
            lines.append("FAIL:")
            lines.extend(f"  - {violation}" for violation in self.violations)
        return lines


def _normalize(raw: bytes):
    """A response payload as comparable structure: ``wall_time`` zeroed."""
    doc = json.loads(raw)
    if isinstance(doc, dict) and isinstance(doc.get("report"), dict):
        doc["report"]["wall_time"] = 0.0
    return doc


def _baseline(payloads: list[bytes]) -> list[Any]:
    """Fault-free reference answers, computed exactly as a worker would."""
    from ..engine import run as engine_run
    from .server import encode_report, parse_json_body, resolve_solve_request

    out = []
    for body in payloads:
        _key, name, params, instance = resolve_solve_request(parse_json_body(body))
        report = engine_run(instance, name, params=params)
        out.append(_normalize(encode_report(report)))
    return out


def _drive(
    port: int, payloads: list[bytes], requests: int, concurrency: int
) -> list[tuple[int, bytes | None]]:
    """Closed-loop drive recording ``(status, body)`` per request.

    Transport-level failures (the server never answered) record status
    599 — from the invariant's point of view they are lost requests just
    like a 5xx.
    """
    outcomes: list[tuple[int, bytes | None]] = [(599, None)] * requests
    counter = itertools.count()

    def worker() -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            while True:
                i = next(counter)
                if i >= requests:
                    break
                body = payloads[i % len(payloads)]
                try:
                    conn.request(
                        "POST",
                        "/solve",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    outcomes[i] = (response.status, response.read())
                except (OSError, http.client.HTTPException):
                    conn.close()
                    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, name=f"chaos-client-{i}", daemon=True)
        for i in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def _get_json(port: int, path: str) -> dict | None:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        if response.status != 200:
            return None
        return json.loads(response.read())
    except (OSError, http.client.HTTPException, json.JSONDecodeError):
        return None
    finally:
        conn.close()


def run_chaos(
    plan: FaultPlan | Mapping[str, Any] | str | Path,
    *,
    workers: int = 2,
    requests: int = 40,
    distinct: int | None = None,
    n_rects: int = 40,
    concurrency: int = 4,
    seed: int = 0,
    algorithm: str = "bottom_left",
    request_timeout: float | None = None,
    retries: int = 2,
    backoff_ms: float = 50.0,
    max_restarts: int = 5,
    cache_bytes: int | None = None,
    cache_dir: Path | str | None = None,
    expect_final_ok: bool = True,
    health_deadline_s: float = 30.0,
) -> ChaosReport:
    """Replay ``plan`` against an in-process fleet and verify invariants.

    ``workers >= 2`` runs the full sharded stack (router + spawned worker
    processes) with the plan threaded through both sides of the wire;
    ``workers == 1`` arms the in-process seams on a single
    :class:`~repro.service.server.SolveServer` (router-side sites are
    inert there).  ``expect_final_ok=False`` waives the recovery check
    for plans that intentionally exhaust ``max_restarts`` — lost-request
    and byte-identity checks still apply.
    """
    from ..core.errors import InvalidInstanceError
    from .loadgen import solve_payloads
    from .router import RouterServer
    from .server import InProcessServer, SolveServer

    if isinstance(plan, (str, Path)):
        plan = FaultPlan.load(plan)
    else:
        plan = FaultPlan.from_dict(plan)
    if workers < 1:
        raise InvalidInstanceError(f"workers must be >= 1, got {workers}")
    if requests < 1:
        raise InvalidInstanceError(f"requests must be >= 1, got {requests}")

    distinct = min(requests, 8) if distinct is None else min(distinct, requests)
    payloads = solve_payloads(distinct, n_rects=n_rects, seed=seed, algorithm=algorithm)
    baseline = _baseline(payloads)

    started = time.monotonic()
    if workers == 1:
        config: dict[str, Any] = {"faults": plan.to_dict()}
        if cache_bytes is not None:
            config["cache_bytes"] = cache_bytes
        if cache_dir is not None:
            config["cache_dir"] = cache_dir
        server: Any = SolveServer(**config)
    else:
        worker_config: dict[str, Any] = {}
        if cache_bytes is not None:
            worker_config["cache_bytes"] = cache_bytes
        if cache_dir is not None:
            worker_config["cache_dir"] = cache_dir
        server = RouterServer(
            workers=workers,
            worker_config=worker_config,
            max_restarts=max_restarts,
            request_timeout=request_timeout,
            retries=retries,
            backoff_ms=backoff_ms,
            fault_plan=plan,
        )

    with InProcessServer(server) as srv:
        port = srv.port
        outcomes = _drive(port, payloads, requests, concurrency)

        # Give the supervisor room to finish any in-flight respawn, then
        # read the fleet's verdict on itself.
        final_health = "unreachable"
        recovered = False
        deadline = time.monotonic() + health_deadline_s
        while time.monotonic() < deadline:
            health = _get_json(port, "/healthz")
            if health is not None:
                final_health = health.get("status", "unreachable")
                if final_health == "ok":
                    recovered = True
                    break
            if not expect_final_ok:
                # No point burning the deadline when degraded is expected.
                break
            time.sleep(0.2)

        metrics = _get_json(port, "/metrics") or {}

    router_stats = metrics.get("router", {})
    faults_injected = router_stats.get(
        "faults_injected", metrics.get("faults", {}).get("injected", 0)
    )

    lost = sum(1 for status, _ in outcomes if status != 200)
    mismatched = 0
    for i, (status, raw) in enumerate(outcomes):
        if status == 200 and raw is not None:
            if _normalize(raw) != baseline[i % len(payloads)]:
                mismatched += 1

    violations: list[str] = []
    if lost:
        statuses = sorted({status for status, _ in outcomes if status != 200})
        violations.append(
            f"{lost} of {requests} accepted requests were not answered 200 "
            f"(saw statuses {statuses})"
        )
    if mismatched:
        violations.append(
            f"{mismatched} answered requests differ from the fault-free "
            "baseline (beyond wall_time)"
        )
    if expect_final_ok and not recovered:
        violations.append(
            f"/healthz did not recover to ok within {health_deadline_s:g}s "
            f"(last status: {final_health})"
        )

    return ChaosReport(
        plan=plan.to_dict(),
        workers=workers,
        requests=requests,
        answered=requests - lost,
        lost=lost,
        mismatched=mismatched,
        retries=int(router_stats.get("retries", 0)),
        request_retries=int(router_stats.get("request_retries", 0)),
        faults_injected=int(faults_injected),
        final_health=final_health,
        recovered=recovered,
        violations=violations,
        duration_s=time.monotonic() - started,
    )


def _drive_sessions(
    port: int, per_session: list[list[bytes]], algorithm: str
) -> list[list[tuple[int, bytes | None]]]:
    """One thread per session: create, step through every body, delete.

    A session whose create never succeeds (after a few attempts) marks
    every step 599 — from the invariant's point of view the whole session
    was lost.  A step whose connection dies reconnects and records 599
    for that step only.
    """
    outcomes: list[list[tuple[int, bytes | None]]] = [
        [(599, None)] * len(bodies) for bodies in per_session
    ]
    create_body = json.dumps({"algorithm": algorithm}).encode()
    headers = {"Content-Type": "application/json"}

    def worker(s: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            sid = None
            for _ in range(3):
                try:
                    conn.request("POST", "/session", body=create_body, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                    if response.status == 200:
                        sid = json.loads(raw)["session"]["id"]
                        break
                except (OSError, http.client.HTTPException):
                    conn.close()
                    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
            if sid is None:
                return
            path = f"/session/{sid}/step"
            for j, body in enumerate(per_session[s]):
                try:
                    conn.request("POST", path, body=body, headers=headers)
                    response = conn.getresponse()
                    outcomes[s][j] = (response.status, response.read())
                except (OSError, http.client.HTTPException):
                    conn.close()
                    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
            try:
                conn.request("DELETE", f"/session/{sid}", headers=headers)
                conn.getresponse().read()
            except (OSError, http.client.HTTPException):
                pass
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, args=(s,), name=f"chaos-session-{s}", daemon=True)
        for s in range(len(per_session))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def run_session_chaos(
    plan: FaultPlan | Mapping[str, Any] | str | Path,
    *,
    workers: int = 2,
    sessions: int = 3,
    steps: int = 6,
    base_rects: int = 12,
    step_rects: int = 2,
    seed: int = 0,
    algorithm: str = "bottom_left",
    request_timeout: float | None = None,
    retries: int = 2,
    backoff_ms: float = 50.0,
    max_restarts: int = 5,
    expect_final_ok: bool = True,
    health_deadline_s: float = 30.0,
) -> ChaosReport:
    """Replay ``plan`` against live sessions and verify zero lost steps.

    Each of ``sessions`` concurrent clients opens a session and replays a
    deterministic growing-prefix stream through it while the plan fires
    (``session.step`` crash = a worker dying mid-session).  Invariants:
    every step answered 200 (ring failover plus the router's session
    enrichment must migrate the session with no losses), every answer
    byte-identical to the cold baseline, and ``/healthz`` recovering to
    ``ok``.  ``workers == 1`` arms the seams on a single
    :class:`~repro.service.server.SolveServer` (no failover — only
    survivable kinds make sense there).
    """
    from ..core.errors import InvalidInstanceError
    from ..engine import run as engine_run
    from .loadgen import session_step_bodies
    from .router import RouterServer
    from .server import (
        InProcessServer,
        SolveServer,
        encode_report,
        parse_json_body,
        resolve_solve_request,
    )

    if isinstance(plan, (str, Path)):
        plan = FaultPlan.load(plan)
    else:
        plan = FaultPlan.from_dict(plan)
    if workers < 1:
        raise InvalidInstanceError(f"workers must be >= 1, got {workers}")

    per_session = session_step_bodies(
        sessions, steps, base_rects=base_rects, step_rects=step_rects, seed=seed
    )
    baseline: list[list[Any]] = []
    for bodies in per_session:
        refs = []
        for body in bodies:
            merged = dict(parse_json_body(body))
            merged["algorithm"] = algorithm  # the session default a step inherits
            _key, name, params, instance = resolve_solve_request(merged)
            refs.append(_normalize(encode_report(engine_run(instance, name, params=params))))
        baseline.append(refs)

    started = time.monotonic()
    if workers == 1:
        server: Any = SolveServer(faults=plan.to_dict())
    else:
        server = RouterServer(
            workers=workers,
            max_restarts=max_restarts,
            request_timeout=request_timeout,
            retries=retries,
            backoff_ms=backoff_ms,
            fault_plan=plan,
        )

    with InProcessServer(server) as srv:
        port = srv.port
        outcomes = _drive_sessions(port, per_session, algorithm)

        final_health = "unreachable"
        recovered = False
        deadline = time.monotonic() + health_deadline_s
        while time.monotonic() < deadline:
            health = _get_json(port, "/healthz")
            if health is not None:
                final_health = health.get("status", "unreachable")
                if final_health == "ok":
                    recovered = True
                    break
            if not expect_final_ok:
                break
            time.sleep(0.2)

        metrics = _get_json(port, "/metrics") or {}

    router_stats = metrics.get("router", {})
    faults_injected = router_stats.get(
        "faults_injected", metrics.get("faults", {}).get("injected", 0)
    )

    requests = sessions * steps
    flat = [(s, j) for s in range(sessions) for j in range(steps)]
    lost = sum(1 for s, j in flat if outcomes[s][j][0] != 200)
    mismatched = 0
    for s, j in flat:
        status, raw = outcomes[s][j]
        if status == 200 and raw is not None:
            if _normalize(raw) != baseline[s][j]:
                mismatched += 1

    violations: list[str] = []
    if lost:
        statuses = sorted({outcomes[s][j][0] for s, j in flat if outcomes[s][j][0] != 200})
        violations.append(
            f"{lost} of {requests} session steps were not answered 200 "
            f"(saw statuses {statuses})"
        )
    if mismatched:
        violations.append(
            f"{mismatched} answered steps differ from the fault-free "
            "baseline (beyond wall_time)"
        )
    if expect_final_ok and not recovered:
        violations.append(
            f"/healthz did not recover to ok within {health_deadline_s:g}s "
            f"(last status: {final_health})"
        )

    return ChaosReport(
        plan=plan.to_dict(),
        workers=workers,
        requests=requests,
        answered=requests - lost,
        lost=lost,
        mismatched=mismatched,
        retries=int(router_stats.get("retries", 0)),
        request_retries=int(router_stats.get("request_retries", 0)),
        faults_injected=int(faults_injected),
        final_health=final_health,
        recovered=recovered,
        violations=violations,
        duration_s=time.monotonic() - started,
    )
