"""Async JSON-over-HTTP solve server (stdlib only).

One :class:`SolveServer` wires the serving layers together: requests come
in over a hand-rolled HTTP/1.1 front-end (``asyncio.start_server`` — no
third-party web framework, per the repo's no-new-deps rule), solve traffic
flows ``client → queue → micro-batcher → Executor → cache → response``,
and operational state is always one ``GET /metrics`` away.

The HTTP machinery lives in :class:`HttpServerBase` so the sharded
front-end (:class:`repro.service.router.RouterServer`) speaks the same
wire protocol with the same error mapping and the same metrics shapes —
``SolveServer`` is "the worker" and the router is "the fleet", but a
client cannot tell them apart.

Endpoints
---------
``POST /solve``
    Body ``{"instance": {...}, "algorithm"?: str, "params"?: {...}}``
    (instance format: :mod:`repro.core.serialize`).  Responds with the
    serialised :class:`~repro.engine.report.SolveReport` + placement.  The
    ``X-Repro-Cache: hit | coalesced | warm | miss`` header says whether
    the content-addressed cache served it, a concurrent in-flight solve of
    the same key was joined, a warm-start repair of a cached neighbor
    placement answered (``warm_delta`` opt-in, see
    :mod:`repro.engine.warmstart`), or this request triggered a cold
    solve; ``hit``/``coalesced`` return the exact bytes of the original
    answer.
``POST /portfolio``
    Body ``{"instance": {...}, "algorithms"?: [str], "params"?: {...}}``.
    Races the entrants via :func:`repro.engine.portfolio` off the event
    loop and responds with the winner plus every entrant's summary.
``POST /session`` / ``POST /session/{id}/step`` / ``DELETE /session/{id}``
    Long-lived solve sessions for online traffic.  ``POST /session``
    (body ``{"algorithm"?: str, "params"?: {...}}``) registers per-session
    solve defaults and returns ``{"session": {...}}``; each *step* posts
    ``{"instance": {...}}`` and is answered exactly like ``/solve`` with
    the session's defaults merged in.  Session state is *soft*: a step
    for an unknown id (re)creates it from the step body, which is what
    lets the router migrate a session to a ring successor mid-stream
    after a worker crash without losing a step.  Creating sessions is
    refused with 503 once a drain began (teardown-aware), existing
    sessions may finish their in-flight steps.
``GET /healthz``
    Liveness: ``{"status": "ok", "version": ..., "uptime_s": ...}``.
``GET /metrics``
    Queue depth and batch counters, cache hit/miss/eviction counters,
    request counts by endpoint/status/algorithm, and p50/p95/mean
    latency.  JSON by default; ``Accept: text/plain`` negotiates the
    Prometheus text exposition format instead.

Error mapping: malformed JSON → 400; invalid instance, unknown algorithm,
or a failed solve → 422; full request queue → 503 (with ``Retry-After``);
unknown path → 404; unsupported method → 405; oversized body → 413.  The
body of every error is ``{"error": "..."}``.

:class:`InProcessServer` runs any server with the ``start``/``close``
lifecycle on a daemon thread with its own event loop — the harness behind
``repro loadtest``'s default target, the ``service_throughput`` /
``service_scaling`` benches, and the test suite.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from pathlib import Path
from typing import Any, Mapping

from ..core.errors import InvalidInstanceError, ReproError
from ..core.serialize import (
    instance_from_dict,
    instance_sketch,
    instance_to_dict,
    placement_from_dict,
    placement_to_dict,
    result_key,
)
from ..obs import get_logger, recorder
from ..obs.spans import histogram_samples
from ..obs.trace import (
    TENANT_HEADER,
    TRACE_HEADER,
    current_trace,
    parse_trace_header,
    reset_current,
    set_current,
)
from .cache import DEFAULT_CACHE_BYTES, NeighborIndex, ResultCache
from .faults import FaultInjector, FaultPlan, as_injector
from .queue import BackpressureError, MicroBatcher

__all__ = [
    "HttpServerBase",
    "SolveServer",
    "InProcessServer",
    "ServiceMetrics",
    "encode_report",
    "prometheus_samples",
    "render_prometheus",
]

#: Largest accepted request body (a ~100k-rect instance is ~10 MB).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Most header lines one request may carry (no legitimate client nears it).
MAX_HEADERS = 128

_JSON_HEADERS = {"Content-Type": "application/json"}

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def encode_report(report) -> bytes:
    """Serialise one ``SolveReport`` (+ placement) into response bytes.

    This is the cache value and the wire format in one: deterministic JSON
    (sorted keys, no whitespace), so repeated cache hits are byte-identical
    and every deterministic field matches a direct ``engine.run()`` —
    ``wall_time`` alone is measured per solve rather than derived.
    """
    payload = {
        "report": report.to_dict(),
        "placement": (
            placement_to_dict(report.placement) if report.placement is not None else None
        ),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


class _BadRequest(Exception):
    """Maps to an HTTP error response (status + one-line message)."""

    def __init__(self, status: HTTPStatus, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceMetrics:
    """Request counters and latency reservoirs for ``GET /metrics``.

    Latencies are kept in bounded deques (last ``maxlen`` requests) per
    endpoint; percentiles are computed on read with the bench subsystem's
    :func:`~repro.bench.runner.percentile`, so ``/metrics`` and
    ``BENCH_*.json`` artifacts report the same statistic.
    """

    def __init__(self, maxlen: int = 2048) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._by_endpoint: dict[str, int] = {}
        self._by_status: dict[str, int] = {}
        self._by_algorithm: dict[str, int] = {}
        self._latencies: dict[str, deque[float]] = {}
        self._maxlen = maxlen

    def record(self, endpoint: str, status: int, latency_s: float | None) -> None:
        """Count one response; ``latency_s=None`` counts without a sample
        (unparseable requests have no meaningful latency, and zeros would
        drag the aggregate percentiles toward 0)."""
        with self._lock:
            self._by_endpoint[endpoint] = self._by_endpoint.get(endpoint, 0) + 1
            key = str(int(status))
            self._by_status[key] = self._by_status.get(key, 0) + 1
            if latency_s is not None:
                self._latencies.setdefault(endpoint, deque(maxlen=self._maxlen)).append(
                    latency_s
                )

    def count_algorithm(self, name: str) -> None:
        """Count one resolved ``/solve`` by algorithm (Prometheus label)."""
        with self._lock:
            self._by_algorithm[name] = self._by_algorithm.get(name, 0) + 1

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    @staticmethod
    def _latency_summary(samples: list[float]) -> dict[str, float | int]:
        from ..bench.runner import percentile

        if not samples:
            return {"count": 0}
        return {
            "count": len(samples),
            "p50_ms": percentile(samples, 50.0) * 1e3,
            "p95_ms": percentile(samples, 95.0) * 1e3,
            "mean_ms": sum(samples) / len(samples) * 1e3,
            "max_ms": max(samples) * 1e3,
        }

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            by_endpoint = dict(self._by_endpoint)
            by_status = dict(self._by_status)
            by_algorithm = dict(self._by_algorithm)
            per_endpoint = {k: list(v) for k, v in self._latencies.items()}
        all_samples = [s for samples in per_endpoint.values() for s in samples]
        return {
            "uptime_s": self.uptime_s,
            "requests": {
                "total": sum(by_endpoint.values()),
                "by_endpoint": by_endpoint,
                "by_status": by_status,
                "by_algorithm": by_algorithm,
            },
            "latency": self._latency_summary(all_samples),
            "endpoints": {
                name: self._latency_summary(samples)
                for name, samples in sorted(per_endpoint.items())
            },
        }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

#: (metric name, type) pairs the snapshot converter can emit.
_PROM_TYPES = {
    "repro_uptime_seconds": "gauge",
    "repro_requests_total": "counter",
    "repro_responses_total": "counter",
    "repro_solves_total": "counter",
    "repro_request_latency_milliseconds": "gauge",
    "repro_queue_depth": "gauge",
    "repro_queue_submitted_total": "counter",
    "repro_queue_completed_total": "counter",
    "repro_queue_rejected_total": "counter",
    "repro_queue_batches_total": "counter",
    "repro_cache_hits_total": "counter",
    "repro_cache_misses_total": "counter",
    "repro_cache_evictions_total": "counter",
    "repro_cache_spills_total": "counter",
    "repro_cache_spill_hits_total": "counter",
    "repro_cache_corruptions_total": "counter",
    "repro_cache_entries": "gauge",
    "repro_cache_bytes": "gauge",
    "repro_cache_warm_hits_total": "counter",
    "repro_sessions_active": "gauge",
    "repro_sessions_created_total": "counter",
    "repro_session_steps_total": "counter",
    "repro_workers_total": "gauge",
    "repro_workers_alive": "gauge",
    "repro_worker_restarts_total": "counter",
    "repro_router_retries_total": "counter",
    "repro_retries_total": "counter",
    "repro_faults_injected_total": "counter",
    # Span-duration histograms (repro.obs.spans): the conventional
    # histogram series emitted as three explicit counter families.
    "repro_span_duration_seconds_bucket": "counter",
    "repro_span_duration_seconds_sum": "counter",
    "repro_span_duration_seconds_count": "counter",
}

#: One metrics sample: (metric name, labels, value).
Sample = tuple[str, dict, float]


def prometheus_samples(
    snapshot: Mapping[str, Any], labels: Mapping[str, str] | None = None
) -> list[Sample]:
    """Flatten one server metrics snapshot into Prometheus samples.

    ``labels`` (e.g. ``{"worker": "0"}``) are merged into every sample so
    the router can expose per-worker series next to its own aggregates.
    """
    base = dict(labels or {})
    out: list[Sample] = []

    def add(name: str, value, **extra) -> None:
        if value is not None:
            out.append((name, {**base, **extra}, float(value)))

    add("repro_uptime_seconds", snapshot.get("uptime_s"))
    kernel = snapshot.get("kernel")
    if kernel:
        # Info-pattern gauge: constant 1, the tier rides in the labels.
        add(
            "repro_kernel_tier",
            1,
            tier=kernel.get("active", "array"),
            requested=kernel.get("requested", "auto"),
        )
    requests = snapshot.get("requests", {})
    for endpoint, count in sorted(requests.get("by_endpoint", {}).items()):
        add("repro_requests_total", count, endpoint=endpoint)
    for status, count in sorted(requests.get("by_status", {}).items()):
        add("repro_responses_total", count, status=status)
    for algorithm, count in sorted(requests.get("by_algorithm", {}).items()):
        add("repro_solves_total", count, algorithm=algorithm)
    for endpoint, summary in sorted(snapshot.get("endpoints", {}).items()):
        for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms")):
            add(
                "repro_request_latency_milliseconds",
                summary.get(key),
                endpoint=endpoint,
                quantile=quantile,
            )
    queue = snapshot.get("queue", {})
    add("repro_queue_depth", queue.get("depth"))
    for field in ("submitted", "completed", "rejected", "batches"):
        add(f"repro_queue_{field}_total", queue.get(field))
    cache = snapshot.get("cache", {})
    for field in ("hits", "misses", "evictions", "spills", "spill_hits", "corruptions"):
        add(f"repro_cache_{field}_total", cache.get(field))
    add("repro_cache_entries", cache.get("entries"))
    add("repro_cache_bytes", cache.get("bytes"))
    add("repro_cache_warm_hits_total", cache.get("warm_hits"))
    sessions = snapshot.get("sessions", {})
    add("repro_sessions_active", sessions.get("active"))
    add("repro_sessions_created_total", sessions.get("created"))
    add("repro_session_steps_total", sessions.get("steps"))
    add("repro_faults_injected_total", snapshot.get("faults", {}).get("injected"))
    spans = snapshot.get("spans")
    if spans:
        out.extend(histogram_samples(spans, base))
    return out


def render_prometheus(samples: list[Sample]) -> bytes:
    """Render samples into the text exposition format (one ``# TYPE`` line
    per metric name, emitted before its first sample)."""
    lines: list[str] = []
    typed: set[str] = set()
    for name, labels, value in samples:
        if name not in typed:
            lines.append(f"# TYPE {name} {_PROM_TYPES.get(name, 'gauge')}")
            typed.add(name)
        if labels:
            rendered = ",".join(
                f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
                for k, v in sorted(labels.items())
            )
            lines.append(f"{name}{{{rendered}}} {value:g}")
        else:
            lines.append(f"{name} {value:g}")
    return ("\n".join(lines) + "\n").encode("utf-8")


def _wants_prometheus(headers: Mapping[str, str]) -> bool:
    """Content negotiation for ``GET /metrics``: JSON unless the client
    asks for ``text/plain`` (the Prometheus scrape default)."""
    accept = headers.get("accept", "")
    return "text/plain" in accept and "application/json" not in accept.split(";")[0]


# ----------------------------------------------------------------------
# request resolution (shared by the worker server and the router)
# ----------------------------------------------------------------------

def parse_json_body(body: bytes) -> dict[str, Any]:
    try:
        data = json.loads(body or b"null")
    except json.JSONDecodeError as exc:
        raise _BadRequest(HTTPStatus.BAD_REQUEST, f"malformed JSON body: {exc}")
    if not isinstance(data, dict):
        raise _BadRequest(HTTPStatus.BAD_REQUEST, "request body must be a JSON object")
    return data


def _parse_instance(data: dict[str, Any]):
    if "instance" not in data:
        raise _BadRequest(HTTPStatus.BAD_REQUEST, "missing 'instance' field")
    try:
        return instance_from_dict(data["instance"])
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise _BadRequest(HTTPStatus.UNPROCESSABLE_ENTITY, f"invalid instance: {exc}")


def resolve_solve_request(data: dict[str, Any]):
    """Validate a ``/solve`` body into ``(key, name, params, instance)``.

    The router and the worker both run this, so the content-addressed
    ``result_key`` that routes a request over the hash ring is the same
    key the worker's cache and in-flight coalescing use — routing is
    key-affine by construction.
    """
    instance = _parse_instance(data)
    algorithm = data.get("algorithm")
    if algorithm is not None and not isinstance(algorithm, str):
        raise _BadRequest(HTTPStatus.BAD_REQUEST, "'algorithm' must be a string")
    params = data.get("params")
    if params is not None and not isinstance(params, dict):
        raise _BadRequest(HTTPStatus.BAD_REQUEST, "'params' must be an object")
    from ..engine import default_algorithm, get_spec

    try:
        # Resolve the per-variant default up front so explicit and
        # defaulted requests for the same solve share one cache entry.
        # Only an *absent* algorithm means "default": an explicit ""
        # is a client bug and must fail loudly, not solve silently.
        name = (
            get_spec(algorithm).name
            if algorithm is not None
            else default_algorithm(instance)
        )
        key = result_key(instance, name, params)
    except ReproError as exc:
        raise _BadRequest(HTTPStatus.UNPROCESSABLE_ENTITY, str(exc))
    return key, name, params, instance


def resolve_portfolio_request(data: dict[str, Any]):
    """Validate a ``/portfolio`` body into ``(key, instance, algorithms,
    params)`` — same contract as :func:`resolve_solve_request`."""
    instance = _parse_instance(data)
    algorithms = data.get("algorithms")
    params = data.get("params")
    if algorithms is not None and (
        not isinstance(algorithms, list)
        or not all(isinstance(a, str) for a in algorithms)
    ):
        raise _BadRequest(HTTPStatus.BAD_REQUEST, "'algorithms' must be a list of names")
    if params is not None and not isinstance(params, dict):
        raise _BadRequest(HTTPStatus.BAD_REQUEST, "'params' must be an object")
    key = result_key(instance, "portfolio", {"algorithms": algorithms, "params": params})
    return key, instance, algorithms, params


class HttpServerBase:
    """The stdlib HTTP/1.1 front-end shared by worker and router servers.

    Subclasses define ``ROUTES``/``ENDPOINTS`` plus the handler
    coroutines (``handler(body, headers) -> (status, extra_headers,
    payload)``) and may hook the lifecycle:

    * :meth:`_before_bind` — async setup that must precede accepting
      traffic (the router spawns its worker fleet here);
    * :meth:`_after_bind` — sync setup tied to a successful bind (the
      worker server starts its micro-batcher here, so a failed bind
      leaks no thread).

    Graceful drain support: :meth:`begin_drain` stops keep-alive reuse,
    and :meth:`drain_requests` awaits in-flight dispatches.
    """

    #: (method, path) -> handler name; also the metrics cardinality bound.
    ROUTES: dict[tuple[str, str], str] = {}
    ENDPOINTS: frozenset[str] = frozenset()
    #: Path-parameterised routes: (method, compiled pattern, handler name,
    #: endpoint label).  The label replaces the raw path in metrics, so
    #: ``/session/<anything>/step`` is one bounded series, not one per id.
    DYNAMIC_ROUTES: tuple[tuple[str, "re.Pattern[str]", str, str], ...] = ()

    #: Name of the per-request root span (the router overrides it, so a
    #: merged trace distinguishes the front-door hop from the worker hop).
    SPAN_ROOT = "server.request"

    def __init__(self) -> None:
        self.metrics = ServiceMetrics()
        self.host: str | None = None
        self.port: int | None = None
        self._active_requests = 0
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    async def _before_bind(self) -> None:
        """Async setup that must complete before the listener binds."""

    def _after_bind(self) -> None:
        """Sync setup tied to a successful bind."""

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Bind and start serving; returns the listening ``asyncio.Server``.

        ``port=0`` binds an ephemeral port; the chosen one is on
        ``self.port``.  Bind failures (port in use, bad host) propagate as
        ``OSError`` for the CLI to map to exit code 2.
        """
        await self._before_bind()
        server = await asyncio.start_server(self._handle_client, host, port)
        self._after_bind()
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return server

    async def serve(
        self, host: str = "127.0.0.1", port: int = 8080, *, ready=None
    ) -> None:
        """Run until cancelled (the ``repro serve`` entry point)."""
        server = await self.start(host, port)
        if ready is not None:
            ready(self)
        try:
            async with server:
                await server.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        """Release resources (idempotent); overridden by subclasses."""

    def begin_drain(self) -> None:
        """Stop keep-alive reuse: every in-flight response closes its
        connection, so drained clients reconnect elsewhere (or get
        connection-refused once the listener is down)."""
        self._draining = True

    async def drain_requests(self, timeout: float = 30.0) -> None:
        """Wait until no request is inside a handler (or ``timeout``)."""
        deadline = time.monotonic() + timeout
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)

    # -- HTTP front-end --------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection, keep-alive until EOF or ``Connection: close``."""
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    # The request head itself is unacceptable (garbled
                    # line, oversized body): answer once, then close —
                    # the stream position is no longer trustworthy.
                    status, headers, payload = self._error(exc.status, str(exc))
                    self.metrics.record("unparsed", status, None)
                    await self._write_response(writer, status, payload, headers, False)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                t0 = time.monotonic()
                # Front door of the trace: adopt the propagated context
                # (router -> worker) or mint a fresh one, and make it
                # ambient for everything _dispatch awaits or executes.
                ctx = parse_trace_header(
                    headers.get(TRACE_HEADER.lower()),
                    tenant=headers.get(TENANT_HEADER.lower()),
                )
                token = set_current(ctx)
                self._active_requests += 1
                try:
                    status, extra_headers, payload = await self._dispatch(
                        method, path, headers, body
                    )
                finally:
                    self._active_requests -= 1
                    reset_current(token)
                latency_s = time.monotonic() - t0
                # Unmatched paths share one metrics key, so a client
                # probing random URLs cannot grow the endpoint table.
                endpoint = self._endpoint_label(path)
                self.metrics.record(endpoint, status, latency_s)
                recorder().record(
                    ctx.trace_id,
                    self.SPAN_ROOT,
                    t0,
                    latency_s,
                    tenant=ctx.tenant,
                    endpoint=endpoint,
                )
                extra_headers = {**extra_headers, TRACE_HEADER: ctx.header_value()}
                event_fields = {
                    "trace": ctx.trace_id,
                    "endpoint": endpoint,
                    "status": int(status),
                    "latency_ms": round(latency_s * 1e3, 3),
                    "tenant": ctx.tenant,
                }
                cache_disposition = extra_headers.get("X-Repro-Cache")
                if cache_disposition is not None:
                    event_fields["cache"] = cache_disposition
                get_logger().event(
                    "request", logger="repro.service.request", **event_fields
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._draining
                )
                await self._write_response(
                    writer, status, payload, extra_headers, keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            # A truncated request or a vanished client: drop the
            # connection; there is no well-formed request to answer.
            # (Handler-side failures never reach here — _dispatch maps
            # them to 4xx/500 responses.)
            pass
        except asyncio.CancelledError:
            # Only server teardown cancels connection handlers; finish
            # normally so the streams machinery doesn't log the cancel.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass

    @staticmethod
    async def _readline(reader: asyncio.StreamReader) -> bytes:
        """One protocol line; an over-limit line (StreamReader raises
        ``ValueError`` past its 64 KiB default) becomes a 400."""
        try:
            return await reader.readline()
        except ValueError:
            raise _BadRequest(HTTPStatus.BAD_REQUEST, "header line too long")

    @classmethod
    async def _read_request(
        cls, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await cls._readline(reader)
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest(HTTPStatus.BAD_REQUEST, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            header = await cls._readline(reader)
            if header in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADERS:
                raise _BadRequest(
                    HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE,
                    f"more than {MAX_HEADERS} header fields",
                )
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            # No chunked decoding here; misparsing the chunk stream as the
            # next request would desync the connection, so say what we need.
            raise _BadRequest(
                HTTPStatus.LENGTH_REQUIRED,
                "chunked transfer encoding is not supported; send Content-Length",
            )
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest(HTTPStatus.BAD_REQUEST, f"bad Content-Length: {raw_length!r}")
        if length < 0:
            raise _BadRequest(HTTPStatus.BAD_REQUEST, f"bad Content-Length: {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], headers, body

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        extra_headers: Mapping[str, str],
        keep_alive: bool,
    ) -> None:
        reason = HTTPStatus(status).phrase
        headers = {
            **_JSON_HEADERS,
            "Content-Length": str(len(payload)),
            "Connection": "keep-alive" if keep_alive else "close",
            **extra_headers,
        }
        head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
            f"{k}: {v}\r\n" for k, v in headers.items()
        )
        writer.write(head.encode("latin-1") + b"\r\n" + payload)
        await writer.drain()

    # -- routing ----------------------------------------------------------

    def _endpoint_label(self, path: str) -> str:
        """The bounded metrics key for ``path`` (dynamic routes collapse
        onto their label, everything unknown onto ``"unmatched"``)."""
        if path in self.ENDPOINTS:
            return path
        for _method, pattern, _handler, label in self.DYNAMIC_ROUTES:
            if pattern.fullmatch(path):
                return label
        return "unmatched"

    def _match_dynamic(
        self, method: str, path: str
    ) -> tuple[str | None, dict[str, str], bool]:
        """Resolve ``path`` against :data:`DYNAMIC_ROUTES`: returns
        ``(handler_name, path_args, path_known)`` where ``path_known``
        distinguishes a 405 (path exists, wrong method) from a 404."""
        path_known = False
        for route_method, pattern, handler_name, _label in self.DYNAMIC_ROUTES:
            match = pattern.fullmatch(path)
            if match is None:
                continue
            path_known = True
            if route_method == method:
                return handler_name, match.groupdict(), True
        return None, {}, path_known

    async def _dispatch(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> tuple[int, dict[str, str], bytes]:
        handler_name = self.ROUTES.get((method, path))
        path_args: dict[str, str] = {}
        if handler_name is None:
            handler_name, path_args, path_known = self._match_dynamic(method, path)
            if handler_name is None:
                if path in self.ENDPOINTS or path_known:
                    return self._error(
                        HTTPStatus.METHOD_NOT_ALLOWED, f"{method} not allowed on {path}"
                    )
                return self._error(HTTPStatus.NOT_FOUND, f"no such endpoint: {path}")
        try:
            return await getattr(self, handler_name)(body, headers, **path_args)
        except _BadRequest as exc:
            return self._error(exc.status, str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # A handler bug must answer 500, not silently drop the
            # connection — invisible failures are unoperable failures.
            return self._error(
                HTTPStatus.INTERNAL_SERVER_ERROR, f"{type(exc).__name__}: {exc}"
            )

    @staticmethod
    def _error(status: HTTPStatus, message: str) -> tuple[int, dict[str, str], bytes]:
        payload = json.dumps({"error": message}).encode("utf-8")
        headers = {"Retry-After": "1"} if status == HTTPStatus.SERVICE_UNAVAILABLE else {}
        return int(status), headers, payload

    @staticmethod
    def _json_body(body: bytes) -> dict[str, Any]:
        return parse_json_body(body)


class SolveServer(HttpServerBase):
    """The single-process serving stack: HTTP + batcher + cache + metrics.

    Constructor knobs mirror the ``repro serve`` flags; all have serving-
    friendly defaults.  ``backend``/``jobs`` select the engine executor
    micro-batches fan out over (the same seam as ``repro batch``).  With
    ``repro serve --workers N`` this class is the per-worker shard behind
    :class:`~repro.service.router.RouterServer`; a shared ``cache_dir``
    then acts as the common L2 cache tier under each worker's L1 memory.
    """

    def __init__(
        self,
        *,
        backend: str | None = None,
        jobs: int | None = None,
        max_batch: int = 16,
        max_wait_s: float = 0.002,
        queue_size: int = 512,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        cache_dir: Path | str | None = None,
        warm_delta: float | None = None,
        faults: "FaultInjector | FaultPlan | Mapping[str, Any] | None" = None,
    ) -> None:
        super().__init__()
        if warm_delta is not None and warm_delta < 0:
            raise InvalidInstanceError(
                f"warm_delta must be >= 0, got {warm_delta}"
            )
        # One injector is shared with the cache and the batcher, so a
        # plan's per-site counters see every seam of this process.
        self.faults = as_injector(faults)
        self.cache = ResultCache(cache_bytes, spill_dir=cache_dir, faults=self.faults)
        self.batcher = MicroBatcher(
            backend=backend,
            jobs=jobs,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            maxsize=queue_size,
            faults=self.faults,
        )
        # Portfolio races block a worker thread (they fan out internally
        # through their own executor); two workers keep /portfolio off the
        # event loop without competing with the batcher for cores.
        self._pool = ThreadPoolExecutor(max_workers=2, thread_name_prefix="repro-portfolio")
        # In-flight coalescing: result-key -> future payload of the request
        # currently solving it.  Only the event loop touches this dict, so
        # no lock is needed; concurrent identical misses join the leader's
        # solve instead of duplicating it.
        self._inflight: dict[str, asyncio.Future] = {}
        self._backend = backend
        self._jobs = jobs
        # Warm-start delta solving is opt-in (warm_delta=None keeps every
        # answer byte-identical to a cold engine run, which the chaos and
        # differential suites pin).  When enabled, the neighbor index maps
        # LSH sketches to cached instances so a near-duplicate request is
        # answered by repairing the neighbor's placement instead of
        # re-solving from scratch (see repro.engine.warmstart).
        self.warm_delta = warm_delta
        self.neighbors = NeighborIndex() if warm_delta is not None else None
        self._warm_hits = 0
        # Long-lived sessions: id -> {"algorithm", "params", "steps"}.
        # Soft state touched only on the event loop — a step for an
        # unknown id recreates it, so losing this dict (worker crash)
        # costs nothing but the recreate.
        self._sessions: dict[str, dict[str, Any]] = {}
        self._session_seq = 0
        self._sessions_created = 0
        self._session_steps = 0

    # -- lifecycle ------------------------------------------------------

    def _after_bind(self) -> None:
        # The batcher thread only starts once the bind succeeded, so a
        # failed start leaves no thread behind.
        self.batcher.start()

    def close(self) -> None:
        """Stop the batcher and the portfolio pool (idempotent)."""
        self.batcher.stop()
        self._pool.shutdown(wait=False, cancel_futures=True)

    async def drain(self, bound: asyncio.Server, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, flush queued solves, close.

        The contract behind SIGTERM on ``repro serve``: every request the
        listener accepted is answered (in-flight handlers finish, the
        micro-batcher drains its queue) before resources are torn down.
        """
        get_logger().event("drain", logger="repro.service", stage="begin")
        self.begin_drain()
        bound.close()
        await bound.wait_closed()
        await self.drain_requests(timeout)
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.batcher.drain(timeout)
        )
        self.close()
        get_logger().event("drain", logger="repro.service", stage="complete")

    # -- caching helpers --------------------------------------------------

    async def _coalesced(self, key: str, produce) -> tuple[bytes, str]:
        """Serve ``key`` from cache, a joined in-flight solve, or ``produce``.

        Returns ``(payload, "hit" | "coalesced" | "miss")``.  The leader
        (first miss) registers a future, runs ``produce`` (an async
        callable returning payload bytes), caches, and resolves the future;
        followers await it shielded, so one slow client's disconnect never
        cancels work others are waiting on.  A failed leader resolves the
        future with ``None`` and each follower retries independently —
        errors are never coalesced into unrelated requests.

        In-flight is probed *before* the cache: a follower that will be
        answered ``coalesced`` must not also count a cache miss, or the
        ``X-Repro-Cache`` headers and the ``/metrics`` cache counters
        disagree for the whole coalescing window.  Header↔counter
        consistency is pinned by tests; keep the probe order.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            payload = await asyncio.shield(existing)
            if payload is not None:
                return payload, "coalesced"
        cached = await self._cache_get(key)
        if cached is not None:
            return cached, "hit"
        # The spill-tier lookup awaited: someone may have become leader
        # meanwhile.  Join them rather than racing a duplicate solve.
        existing = self._inflight.get(key)
        if existing is not None:
            payload = await asyncio.shield(existing)
            if payload is not None:
                return payload, "coalesced"
        leader: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = leader
        payload = None
        try:
            payload = await produce()
            await self._cache_put(key, payload)
            return payload, "miss"
        finally:
            if self._inflight.get(key) is leader:
                del self._inflight[key]
            if not leader.done():
                leader.set_result(payload)

    async def _cache_get(self, key: str) -> bytes | None:
        """Cache lookup that keeps spill-tier disk reads off the event loop.

        Without a spill directory ``get`` is a pure in-memory operation —
        call it inline.  With one, the memory tier is still probed inline
        (a lock + dict lookup; the hot path must not pay executor
        scheduling per hit) and only the possible-disk-read miss path
        moves to the default thread-pool executor.
        """
        ctx = current_trace()
        with recorder().span(
            ctx.trace_id if ctx else None,
            "cache.lookup",
            tenant=ctx.tenant if ctx else "default",
        ):
            if self.cache.spill_dir is None:
                return self.cache.get(key)
            payload = self.cache.get_memory(key)
            if payload is not None:
                return payload
            return await asyncio.get_running_loop().run_in_executor(
                None, self.cache.get, key
            )

    async def _cache_put(self, key: str, payload: bytes) -> None:
        """Cache insert; eviction may spill to disk, so same treatment."""
        ctx = current_trace()
        with recorder().span(
            ctx.trace_id if ctx else None,
            "cache.store",
            tenant=ctx.tenant if ctx else "default",
        ):
            if self.cache.spill_dir is None:
                self.cache.put(key, payload)
                return
            await asyncio.get_running_loop().run_in_executor(
                None, self.cache.put, key, payload
            )

    # -- endpoints ---------------------------------------------------------

    ROUTES = {
        ("GET", "/healthz"): "_healthz",
        ("GET", "/metrics"): "_metrics",
        ("POST", "/solve"): "_solve",
        ("POST", "/portfolio"): "_portfolio",
        ("POST", "/session"): "_session_create",
    }
    ENDPOINTS = frozenset(path for _, path in ROUTES)
    DYNAMIC_ROUTES = (
        (
            "POST",
            re.compile(r"/session/(?P<session_id>[^/]+)/step"),
            "_session_step",
            "/session/{id}/step",
        ),
        (
            "DELETE",
            re.compile(r"/session/(?P<session_id>[^/]+)"),
            "_session_delete",
            "/session/{id}",
        ),
        (
            "GET",
            re.compile(r"/debug/trace/(?P<trace_id>[^/]+)"),
            "_debug_trace",
            "/debug/trace/{id}",
        ),
    )

    async def _debug_trace(
        self, body: bytes, headers, trace_id: str
    ) -> tuple[int, dict[str, str], bytes]:
        """This process's recorded spans for ``trace_id`` (an unknown id
        answers an empty span list, not a 404 — the ring may simply have
        evicted it)."""
        doc = recorder().trace_document(trace_id)
        return 200, {}, json.dumps(doc, sort_keys=True).encode("utf-8")

    async def _healthz(self, body: bytes, headers) -> tuple[int, dict[str, str], bytes]:
        from .. import __version__

        payload = json.dumps(
            {"status": "ok", "version": __version__, "uptime_s": self.metrics.uptime_s}
        ).encode("utf-8")
        return 200, {}, payload

    def metrics_snapshot(self) -> dict[str, Any]:
        """The full ``/metrics`` document (also read by the router)."""
        from .. import kernels

        snapshot = self.metrics.snapshot()
        snapshot["kernel"] = kernels.tier_info()
        snapshot["queue"] = self.batcher.stats().to_dict()
        snapshot["cache"] = self.cache.stats().to_dict()
        snapshot["cache"]["warm_hits"] = self._warm_hits
        snapshot["sessions"] = {
            "active": len(self._sessions),
            "created": self._sessions_created,
            "steps": self._session_steps,
        }
        snapshot["spans"] = recorder().histogram_snapshot()
        if self.faults is not None:
            snapshot["faults"] = {
                "injected": self.faults.fired,
                "sites": self.faults.stats(),
            }
        return snapshot

    async def _metrics(self, body: bytes, headers) -> tuple[int, dict[str, str], bytes]:
        snapshot = self.metrics_snapshot()
        if _wants_prometheus(headers):
            payload = render_prometheus(prometheus_samples(snapshot))
            return 200, {"Content-Type": PROMETHEUS_CONTENT_TYPE}, payload
        return 200, {}, json.dumps(snapshot, sort_keys=True).encode("utf-8")

    # -- warm-start plumbing ----------------------------------------------

    def _warm_attempt(
        self,
        key: str,
        name: str,
        params,
        instance,
        state: dict[str, Any],
    ) -> bytes | None:
        """Try to answer ``key`` by repairing a cached neighbor placement.

        Runs on the executor (sketching + repair are CPU work).  Returns
        the encoded payload on an accepted repair, ``None`` otherwise —
        the caller then takes the normal cold path.  ``state`` receives
        the computed sketch/bucket so the cold path can register the
        instance without re-sketching.
        """
        assert self.neighbors is not None
        sketch = instance_sketch(instance)
        bucket = key.split("|", 1)[1]  # spec|params: same-solver scope
        state["sketch"], state["bucket"] = sketch, bucket
        found = self.neighbors.nearest(bucket=bucket, sketch=sketch, exclude=key)
        if found is None:
            return None
        neighbor_key, neighbor_dict = found
        # Memory tier only: a neighbor whose payload already left L1 is
        # not worth a disk read on the hot path — solve cold instead.
        cached = self.cache.get_memory(neighbor_key)
        if cached is None:
            return None
        from ..engine.warmstart import try_warm

        try:
            neighbor_instance = instance_from_dict(neighbor_dict)
            doc = json.loads(cached)
            if doc.get("placement") is None:
                return None
            neighbor_placement = placement_from_dict(doc["placement"], neighbor_instance)
        except (ReproError, KeyError, TypeError, ValueError):
            return None
        report = try_warm(
            instance,
            name,
            params=params,
            neighbor=(neighbor_instance, neighbor_placement),
            delta=self.warm_delta,
        )
        if report is None:
            return None
        self.neighbors.add(
            key, bucket=bucket, sketch=sketch, instance=instance_to_dict(instance)
        )
        return encode_report(report)

    def _remember_neighbor(self, key: str, instance, state: dict[str, Any]) -> None:
        """Register a cold-solved instance in the neighbor index."""
        assert self.neighbors is not None
        sketch = state.get("sketch") or instance_sketch(instance)
        bucket = state.get("bucket") or key.split("|", 1)[1]
        self.neighbors.add(
            key, bucket=bucket, sketch=sketch, instance=instance_to_dict(instance)
        )

    async def _solve_payload(
        self, key: str, name: str, params, instance
    ) -> tuple[bytes, str]:
        """The shared ``/solve`` + session-step engine path: cache →
        coalesce → warm-start (opt-in) → micro-batched cold solve.

        Returns ``(payload, "hit" | "coalesced" | "warm" | "miss")``.
        """
        warmed = {}
        state: dict[str, Any] = {}

        async def produce() -> bytes:
            # The pre/post-solve seams run on the executor so an injected
            # `slow`/`hang` stalls this request without blocking the loop
            # (a `crash` hard-kills the process from any thread anyway).
            loop = asyncio.get_running_loop()
            if self.faults is not None:
                await loop.run_in_executor(
                    None, self.faults.fire_sync, "worker.pre_solve"
                )
            if self.neighbors is not None:
                payload = await loop.run_in_executor(
                    None, self._warm_attempt, key, name, params, instance, state
                )
                if payload is not None:
                    warmed["warm"] = True
                    if self.faults is not None:
                        await loop.run_in_executor(
                            None, self.faults.fire_sync, "worker.post_solve"
                        )
                    return payload
            try:
                future = self.batcher.submit(instance, name, params)
                # The queue can also shed this request *after* accepting
                # it (shutdown drains pending futures) — still 503.
                report = await asyncio.wrap_future(future)
            except BackpressureError as exc:
                raise _BadRequest(HTTPStatus.SERVICE_UNAVAILABLE, str(exc))
            if report.placement is None:
                raise _BadRequest(
                    HTTPStatus.UNPROCESSABLE_ENTITY, report.error or "solve failed"
                )
            if self.faults is not None:
                await loop.run_in_executor(
                    None, self.faults.fire_sync, "worker.post_solve"
                )
            if self.neighbors is not None:
                await loop.run_in_executor(
                    None, self._remember_neighbor, key, instance, state
                )
            return encode_report(report)

        payload, source = await self._coalesced(key, produce)
        if source == "miss" and warmed:
            source = "warm"
            self._warm_hits += 1
        return payload, source

    async def _solve(self, body: bytes, headers) -> tuple[int, dict[str, str], bytes]:
        data = self._json_body(body)
        key, name, params, instance = resolve_solve_request(data)
        self.metrics.count_algorithm(name)
        payload, source = await self._solve_payload(key, name, params, instance)
        return 200, {"X-Repro-Cache": source}, payload

    # -- sessions ----------------------------------------------------------

    @staticmethod
    def _session_defaults(data: dict[str, Any]) -> tuple[str | None, dict | None]:
        """Validate the per-session solve defaults out of a JSON body."""
        algorithm = data.get("algorithm")
        if algorithm is not None and not isinstance(algorithm, str):
            raise _BadRequest(HTTPStatus.BAD_REQUEST, "'algorithm' must be a string")
        params = data.get("params")
        if params is not None and not isinstance(params, dict):
            raise _BadRequest(HTTPStatus.BAD_REQUEST, "'params' must be an object")
        if algorithm is not None:
            from ..engine import get_spec

            try:
                get_spec(algorithm)
            except ReproError as exc:
                raise _BadRequest(HTTPStatus.UNPROCESSABLE_ENTITY, str(exc))
        return algorithm, params

    @staticmethod
    def _session_payload(session_id: str, session: Mapping[str, Any]) -> bytes:
        return json.dumps(
            {
                "session": {
                    "id": session_id,
                    "algorithm": session["algorithm"],
                    "params": session["params"],
                    "steps": session["steps"],
                }
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    async def _session_create(
        self, body: bytes, headers
    ) -> tuple[int, dict[str, str], bytes]:
        if self._draining:
            raise _BadRequest(
                HTTPStatus.SERVICE_UNAVAILABLE,
                "draining: not accepting new sessions",
            )
        data = self._json_body(body)
        if self.faults is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.faults.fire_sync, "session.create"
            )
        algorithm, params = self._session_defaults(data)
        session_id = data.get("id")
        if session_id is None:
            self._session_seq += 1
            session_id = f"s{self._session_seq:06d}"
        elif not isinstance(session_id, str) or not session_id or "/" in session_id:
            raise _BadRequest(
                HTTPStatus.BAD_REQUEST, "'id' must be a non-empty string without '/'"
            )
        session = {"algorithm": algorithm, "params": params, "steps": 0}
        self._sessions[session_id] = session
        self._sessions_created += 1
        return 200, {}, self._session_payload(session_id, session)

    async def _session_step(
        self, body: bytes, headers, session_id: str
    ) -> tuple[int, dict[str, str], bytes]:
        data = self._json_body(body)
        if self.faults is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.faults.fire_sync, "session.step"
            )
        session = self._sessions.get(session_id)
        if session is None:
            # Soft state: recreate the session from the step body.  The
            # router enriches forwarded steps with the session's solve
            # defaults, so after a worker crash the ring successor picks
            # the stream up mid-flight without losing a step.
            algorithm, params = self._session_defaults(data)
            session = {"algorithm": algorithm, "params": params, "steps": 0}
            self._sessions[session_id] = session
            self._sessions_created += 1
        merged = dict(data)
        if "algorithm" not in merged and session["algorithm"] is not None:
            merged["algorithm"] = session["algorithm"]
        if "params" not in merged and session["params"] is not None:
            merged["params"] = session["params"]
        key, name, params, instance = resolve_solve_request(merged)
        self.metrics.count_algorithm(name)
        payload, source = await self._solve_payload(key, name, params, instance)
        session["steps"] += 1
        self._session_steps += 1
        return 200, {"X-Repro-Cache": source}, payload

    async def _session_delete(
        self, body: bytes, headers, session_id: str
    ) -> tuple[int, dict[str, str], bytes]:
        session = self._sessions.pop(session_id, None)
        if session is None:
            raise _BadRequest(HTTPStatus.NOT_FOUND, f"no such session: {session_id}")
        payload = json.dumps(
            {"deleted": session_id, "steps": session["steps"]},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        return 200, {}, payload

    async def _portfolio(self, body: bytes, headers) -> tuple[int, dict[str, str], bytes]:
        data = self._json_body(body)
        key, instance, algorithms, params = resolve_portfolio_request(data)

        async def produce() -> bytes:
            from ..engine import portfolio

            loop = asyncio.get_running_loop()
            try:
                result = await loop.run_in_executor(
                    self._pool,
                    lambda: portfolio(
                        instance,
                        algorithms,
                        params=params,
                        backend=self._backend,
                        jobs=self._jobs,
                    ),
                )
            except ReproError as exc:
                raise _BadRequest(HTTPStatus.UNPROCESSABLE_ENTITY, str(exc))
            best = result.best
            return json.dumps(
                {
                    "winner": json.loads(encode_report(best)) if best is not None else None,
                    "entrants": [r.to_dict() for r in result.reports],
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")

        payload, source = await self._coalesced(key, produce)
        return 200, {"X-Repro-Cache": source}, payload


class InProcessServer:
    """A server on a daemon thread with its own event loop.

    The context-manager harness behind ``repro loadtest`` (default
    target), the ``service_throughput`` / ``service_scaling`` benches, and
    the server tests.  ``server`` is any object with the
    :class:`HttpServerBase` lifecycle — a :class:`SolveServer` (default)
    or a :class:`~repro.service.router.RouterServer`::

        with InProcessServer() as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port)
            ...

    Startup errors inside the thread (port in use, a worker that fails to
    spawn) re-raise in the entering thread, so failures surface at
    ``__enter__`` time.
    """

    def __init__(
        self,
        server=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        startup_timeout: float = 60.0,
    ) -> None:
        self.server = server if server is not None else SolveServer()
        self._host_arg = host
        self._port_arg = port
        self._startup_timeout = startup_timeout
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host or self._host_arg

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "InProcessServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=self._startup_timeout)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():  # pragma: no cover - defensive
            raise RuntimeError(
                f"in-process server failed to start within {self._startup_timeout}s"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            bound = loop.run_until_complete(
                self.server.start(self._host_arg, self._port_arg)
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            self.server.close()  # nothing to leave running after a failed bind
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            bound.close()
            loop.run_until_complete(bound.wait_closed())
            # Unwind whatever is still running (keep-alive connection
            # handlers, the router's supervisor) before the loop closes,
            # so teardown doesn't spray "Task was destroyed" warnings.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __exit__(self, *exc_info) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        self.server.close()
        self._loop = None
        self._thread = None
