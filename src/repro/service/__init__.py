"""Serving subsystem: turn the solver library into a long-running service.

Seven layers, composed bottom-up (each is independently testable):

* :mod:`repro.service.cache`   — content-addressed result cache
  (thread-safe LRU over response bytes, keyed by
  :func:`repro.core.serialize.result_key`, optional disk spill);
* :mod:`repro.service.queue`   — bounded request queue with
  micro-batching; compatible requests fan out together through the
  engine's :class:`~repro.engine.batch.Executor` seam;
* :mod:`repro.service.server`  — stdlib-only asyncio JSON-over-HTTP
  server (``POST /solve``, ``POST /portfolio``, ``GET /healthz``,
  ``GET /metrics``) surfaced as ``repro serve``;
* :mod:`repro.service.worker`  — worker-process entry point: one
  :class:`SolveServer` per core, spawn-started, SIGTERM-drained;
* :mod:`repro.service.router`  — sharded front-end: consistent-hashes
  each request's ``result_key`` over the worker fleet, fails over around
  the ring, respawns dead workers; surfaced as ``repro serve --workers N``;
* :mod:`repro.service.loadgen` — closed-/open-loop load generator
  surfaced as ``repro loadtest`` (including ``--workers-sweep``);
* :mod:`repro.service.faults` + :mod:`repro.service.chaos` — the
  correctness harness over all of the above: deterministic
  :class:`FaultPlan` schedules injected at explicit seams in every
  layer, replayed and verified by ``repro chaos PLAN.json``.

Heavy modules are imported lazily by their consumers; importing
``repro.service`` itself stays cheap so the CLI can always build its
parser.
"""

from .cache import DEFAULT_CACHE_BYTES, CacheStats, ResultCache
from .chaos import ChaosReport, run_chaos
from .faults import FAULT_SITES, FaultInjector, FaultPlan, FaultSpec
from .queue import BackpressureError, MicroBatcher, QueueStats
from .router import HashRing, RouterServer
from .server import InProcessServer, SolveServer, encode_report

__all__ = [
    "CacheStats",
    "ResultCache",
    "DEFAULT_CACHE_BYTES",
    "BackpressureError",
    "MicroBatcher",
    "QueueStats",
    "SolveServer",
    "InProcessServer",
    "encode_report",
    "HashRing",
    "RouterServer",
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "ChaosReport",
    "run_chaos",
]
