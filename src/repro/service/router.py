"""Consistent-hash router: the sharded front-end of the solve service.

``repro serve --workers N`` puts this in front of N worker processes
(each a full :class:`~repro.service.server.SolveServer`, see
:mod:`repro.service.worker`).  Every ``/solve`` and ``/portfolio`` body is
resolved to its canonical content-addressed ``result_key`` — the *same*
resolution the worker performs — and the key is consistent-hashed over a
:class:`HashRing` of workers.  Key affinity is the whole game: one key
always lands on one worker, so that worker's in-memory LRU is an
effective L1 cache and its in-flight coalescing still collapses
concurrent identical misses, even though the fleet shares nothing but a
disk-spill directory (the L2 tier).

Failure handling is ring-shaped, and it distinguishes *dead* from
*slow*.  A connection-level failure (refused, reset, truncated response)
marks the worker dead, removes it from the ring, and retries the request
on the key's ring successor — an accepted request is never dropped just
because its shard died mid-solve.  A per-request timeout
(``request_timeout``, off by default) instead means the worker is merely
slow: the router retries the *same* worker with seeded exponential
backoff + jitter up to ``retries`` times, and only then walks to the
successor — without de-ringing a worker that is still computing.  Every
failover logs one structured line (``repro.service.router`` logger) with
the worker id and the classified reason.  A supervisor task respawns
dead workers (bounded by ``max_restarts``), splices them back into the
ring, and re-rings live workers that transient connection faults
wrongly benched; ``/healthz`` reports ``degraded`` while the fleet is
short-handed and ``ok`` again after recovery, with the restart count
alongside.

For chaos testing, a :class:`~repro.service.faults.FaultPlan` passed as
``fault_plan`` arms deterministic injection seams on both sides of the
wire: the router's client send/recv and worker spawn (this module), and
the worker's pre/post-solve, cache-spill, and queue-drain seams (the
plan is forwarded inside ``worker_config``).

The router adds a second coalescing layer above the workers: concurrent
identical misses collapse at the front door too, so a worker respawn
storm or a hot key never multiplies into duplicate solves downstream.

Sessions ride the same ring: ``POST /session`` registers the session's
solve defaults in the router and creates mirror state on the worker that
owns the affinity key ``session|{id}``, and every ``POST
/session/{id}/step`` forwards to that owner — so one session's stream of
near-duplicate instances keeps hitting one worker's L1 and neighbor
index (the warm-start locality story).  Steps bypass the front-door
coalescing on purpose: distinct steps of one session are distinct
solves that merely share an affinity key.  The router enriches each
forwarded step with the session's defaults, so when the owning worker
dies mid-session the ring successor rebuilds the session from the step
body itself — failover loses zero steps.  While draining, new sessions
are refused (503); registered sessions keep stepping until the listener
closes.

``/metrics`` aggregates the fleet — summed queue/cache counters keep the
single-process document shape, with per-worker detail nested under
``"workers"`` and router-level counters under ``"router"`` (in Prometheus
form: the same metric names with a ``worker="i"`` label).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import logging
import multiprocessing
import random
import re
import time
from http import HTTPStatus
from typing import Any, Iterable, Mapping

from ..core.errors import InvalidInstanceError
from ..obs import get_logger, recorder
from ..obs.trace import TRACE_HEADER, current_trace
from .faults import FaultInjector, FaultPlan
from .server import (
    HttpServerBase,
    PROMETHEUS_CONTENT_TYPE,
    _BadRequest,
    _wants_prometheus,
    parse_json_body,
    prometheus_samples,
    render_prometheus,
    resolve_portfolio_request,
    resolve_solve_request,
)
from .worker import worker_main

__all__ = ["HashRing", "WorkerHandle", "RouterServer"]

#: Stdlib logger name the structured events fall back to when no explicit
#: sink is configured (``repro serve --log-format/--log-file``); kept so
#: embedding applications and caplog keep seeing router events here.
LOG_NAME = "repro.service.router"

# Retained for callers that attach handlers to the router's logger.
log = logging.getLogger(LOG_NAME)


def _event(event: str, **fields) -> None:
    """One structured line per failover / rejoin / respawn decision —
    every operational event goes through the obs logger (single path)."""
    get_logger().event(event, logger=LOG_NAME, **fields)

#: Virtual nodes per worker: enough to spread the key space within a few
#: percent of even at N <= 16 workers while keeping ring edits cheap.
DEFAULT_REPLICAS = 64


class HashRing:
    """Consistent hashing over a small set of nodes with virtual replicas.

    Each node owns ``replicas`` pseudo-random points on a 64-bit circle
    (SHA-256 of ``"{node}#{i}"``); a key routes to the first node point at
    or after its own hash, wrapping around.  Adding or removing one node
    therefore only moves the keys in that node's arcs — the property that
    keeps per-worker L1 caches warm across fleet changes.
    """

    def __init__(self, nodes: Iterable[Any] = (), replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._points: list[tuple[int, Any]] = []
        self._hashes: list[int] = []
        self._nodes: set[Any] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def add(self, node: Any) -> None:
        """Splice a node's replica points into the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._points.extend((self._hash(f"{node}#{i}"), node) for i in range(self._replicas))
        self._rebuild()

    def remove(self, node: Any) -> None:
        """Drop a node's points; its arcs fall to ring successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]
        self._hashes = [h for h, _ in self._points]

    def __contains__(self, node: Any) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def node_for(self, key: str) -> Any | None:
        """The node owning ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._hashes, self._hash(key)) % len(self._points)
        return self._points[index][1]

    def preference(self, key: str) -> list[Any]:
        """Every node in ring order starting at ``key``'s owner.

        The failover order: index 0 is the primary, the rest are the
        successors a router walks when shards die faster than the
        supervisor revives them.
        """
        if not self._points:
            return []
        start = bisect.bisect_right(self._hashes, self._hash(key)) % len(self._points)
        seen: list[Any] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self._nodes):
                    break
        return seen


class WorkerHandle:
    """One worker process: spawn, liveness, restart accounting.

    Uses the ``spawn`` start method unconditionally — the router may run
    on a thread inside a larger process (tests, benches), where ``fork``
    would snapshot foreign locks in unknown states.  Spawned children are
    daemonic, so a crashed router can never leak solver processes.
    """

    def __init__(
        self,
        worker_id: int,
        config: Mapping[str, Any],
        faults: FaultInjector | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.config = dict(config)
        self.port: int | None = None
        self.process = None
        self.restarts = 0
        self._faults = faults
        self._closed = False
        self._ctx = multiprocessing.get_context("spawn")

    def spawn(self, timeout: float = 60.0) -> "WorkerHandle":
        """Start the process and wait for its bind handshake (blocking —
        callers run this in an executor to keep the event loop free)."""
        if self._faults is not None:
            # The worker.spawn seam: an injected `error` makes this
            # attempt fail exactly like a child that died during startup.
            self._faults.fire_sync("worker.spawn", worker=self.worker_id)
        recv, send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(self.worker_id, send, self.config),
            name=f"repro-worker-{self.worker_id}",
            daemon=True,
        )
        process.start()
        send.close()
        try:
            if not recv.poll(timeout):
                process.terminate()
                process.join(timeout=5)
                raise RuntimeError(
                    f"worker {self.worker_id} did not report its port within {timeout}s"
                )
            message = recv.recv()
        except EOFError:
            # Child died before the handshake (import error, OOM, ...).
            process.join(timeout=5)
            raise RuntimeError(
                f"worker {self.worker_id} died during startup"
                f" (exit code {process.exitcode})"
            ) from None
        finally:
            recv.close()
        if "error" in message:
            process.join(timeout=5)
            raise RuntimeError(f"worker {self.worker_id} failed to start: {message['error']}")
        self.port = message["port"]
        self.process = process
        if self._closed:
            # shutdown() raced this spawn (SIGTERM mid-respawn): reap the
            # fresh child instead of leaking it past the fleet teardown.
            self.shutdown(timeout=5)
            raise RuntimeError(f"worker {self.worker_id} was shut down during spawn")
        return self

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Terminate (SIGTERM → the worker's graceful drain) and reap;
        escalate to SIGKILL only past ``timeout``."""
        self._closed = True
        process = self.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
        process.join(timeout=timeout)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.kill()
            process.join(timeout=5)
        self.process = None


class _WorkerClient:
    """Minimal async HTTP/1.1 client for one worker, with keep-alive reuse.

    Holds a small pool of idle loopback connections; a request that fails
    on a pooled connection is retried once on a fresh one (the worker may
    simply have closed an idle socket), and only a fresh-connection
    failure propagates — that is the router's signal the worker is gone.
    """

    MAX_IDLE = 32

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: int | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._worker_id = worker_id
        self._faults = faults
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        if self._faults is not None:
            for spec in self._faults.check("router.send", worker=self._worker_id):
                if spec.kind == "slow":
                    await asyncio.sleep(spec.delay_s)
                elif spec.kind == "conn_reset":
                    raise ConnectionResetError(
                        f"injected connection reset at router.send"
                        f" (worker {self._worker_id})"
                    )
        while self._idle:
            conn = self._idle.pop()
            try:
                return await self._round_trip(conn, method, path, body, headers)
            except asyncio.CancelledError:
                # A wait_for timeout cancels us mid-round-trip; the popped
                # connection is half-used and must not return to the pool.
                self._discard(conn)
                raise
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                self._discard(conn)
        conn = await asyncio.open_connection(self._host, self._port)
        try:
            return await self._round_trip(conn, method, path, body, headers)
        except BaseException:
            self._discard(conn)
            raise

    async def _round_trip(
        self,
        conn,
        method: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ):
        reader, writer = conn
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            f"{extra}\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionResetError("worker closed the connection")
        parts = status_line.split(None, 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        payload = await reader.readexactly(int(headers.get("content-length", "0")))
        if self._faults is not None:
            for spec in self._faults.check("router.recv", worker=self._worker_id):
                if spec.kind == "slow":
                    await asyncio.sleep(spec.delay_s)
                elif spec.kind == "conn_reset":
                    self._discard(conn)
                    raise ConnectionResetError(
                        f"injected connection reset at router.recv"
                        f" (worker {self._worker_id})"
                    )
                elif spec.kind == "truncate":
                    # The bytes a half-written response would have left us.
                    self._discard(conn)
                    raise asyncio.IncompleteReadError(
                        payload[: len(payload) // 2], len(payload)
                    )
        if headers.get("connection", "keep-alive").lower() == "close":
            self._discard(conn)
        elif len(self._idle) < self.MAX_IDLE:
            self._idle.append(conn)
        else:
            self._discard(conn)
        return status, headers, payload

    @staticmethod
    def _discard(conn) -> None:
        try:
            conn[1].close()
        except Exception:  # pragma: no cover - transport already dead
            pass

    def close(self) -> None:
        while self._idle:
            self._discard(self._idle.pop())


class RouterServer(HttpServerBase):
    """The fleet front-end: N worker processes behind one listener.

    ``worker_config`` is the per-worker
    :class:`~repro.service.server.SolveServer` constructor kwargs.  Point
    every worker at one ``cache_dir`` to give the fleet a shared L2 cache
    tier under the key-affine per-worker L1s.

    Speaks exactly the single-process server's protocol (same routes,
    same error mapping, same ``X-Repro-Cache`` header), so clients and
    the load generator cannot tell one worker from eight.
    """

    #: The front-door hop's root span (vs the worker's ``server.request``).
    SPAN_ROOT = "router.request"

    #: How long a request keeps walking the ring before giving up with 503.
    FAILOVER_TIMEOUT_S = 10.0

    #: Supervisor poll interval — the respawn detection latency bound.
    SUPERVISE_INTERVAL_S = 0.25

    def __init__(
        self,
        *,
        workers: int = 2,
        worker_config: Mapping[str, Any] | None = None,
        replicas: int = DEFAULT_REPLICAS,
        max_restarts: int = 5,
        spawn_timeout: float = 60.0,
        request_timeout: float | None = None,
        retries: int = 2,
        backoff_ms: float = 50.0,
        fault_plan: "FaultPlan | Mapping[str, Any] | None" = None,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise InvalidInstanceError(f"workers must be >= 1, got {workers}")
        if request_timeout is not None and request_timeout <= 0:
            raise InvalidInstanceError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        if retries < 0:
            raise InvalidInstanceError(f"retries must be >= 0, got {retries}")
        if backoff_ms < 0:
            raise InvalidInstanceError(f"backoff_ms must be >= 0, got {backoff_ms}")
        self.n_workers = int(workers)
        self.worker_config = dict(worker_config or {})
        self.max_restarts = int(max_restarts)
        self.request_timeout = None if request_timeout is None else float(request_timeout)
        self.retries = int(retries)
        self.backoff_s = float(backoff_ms) / 1e3
        plan = FaultPlan.from_dict(fault_plan) if fault_plan is not None else None
        # The router keeps one injector for its own seams (client send/
        # recv, worker spawn) and forwards the plan dict to every worker,
        # where a second, worker-scoped injector drives the in-process
        # seams.  The plan's seed also fixes the retry jitter, so a chaos
        # run's backoff schedule replays exactly.
        self.faults = FaultInjector(plan) if plan is not None else None
        if plan is not None:
            self.worker_config.setdefault("fault_plan", plan.to_dict())
        self._retry_rng = random.Random(plan.seed if plan is not None else 0)
        self._spawn_timeout = float(spawn_timeout)
        self._handles: dict[int, WorkerHandle] = {}
        self._clients: dict[int, _WorkerClient] = {}
        self._ring = HashRing(replicas=replicas)
        self._inflight: dict[str, asyncio.Future] = {}
        # Session registry: id -> {"algorithm", "params"}.  The router is
        # the source of truth; worker-side session state is a soft mirror
        # rebuilt on failover from the enriched step bodies.
        self._sessions: dict[str, dict[str, Any]] = {}
        self._session_seq = 0
        self._session_steps = 0
        self._retries = 0
        self._request_retries = 0
        self._respawns_inflight: set[int] = set()
        self._supervisor: asyncio.Task | None = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    async def _before_bind(self) -> None:
        """Spawn the whole fleet (in parallel) before accepting traffic."""
        loop = asyncio.get_running_loop()
        handles = [
            WorkerHandle(i, self.worker_config, faults=self.faults)
            for i in range(self.n_workers)
        ]
        try:
            await asyncio.gather(
                *(
                    loop.run_in_executor(None, handle.spawn, self._spawn_timeout)
                    for handle in handles
                )
            )
        except BaseException:
            for handle in handles:
                handle.shutdown(timeout=2)
            raise
        for handle in handles:
            self._handles[handle.worker_id] = handle
            self._clients[handle.worker_id] = self._make_client(handle)
            self._ring.add(handle.worker_id)
        self._supervisor = loop.create_task(self._supervise())

    def _make_client(self, handle: WorkerHandle) -> _WorkerClient:
        return _WorkerClient(
            "127.0.0.1", handle.port, worker_id=handle.worker_id, faults=self.faults
        )

    async def _supervise(self) -> None:
        """Detect dead workers, respawn them, splice them back in."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.SUPERVISE_INTERVAL_S)
            for worker_id, handle in self._handles.items():
                if worker_id in self._respawns_inflight:
                    continue
                if handle.alive():
                    if worker_id not in self._ring:
                        # A transient connection fault (e.g. an injected
                        # reset) benched a worker whose process is fine —
                        # the liveness probe puts it back in rotation.
                        self._ring.add(worker_id)
                        _event("rejoin", worker=worker_id, reason="alive")
                    continue
                self._mark_dead(worker_id)
                if handle.restarts >= self.max_restarts:
                    continue
                handle.restarts += 1
                self._respawns_inflight.add(worker_id)
                try:
                    await loop.run_in_executor(None, handle.spawn, self._spawn_timeout)
                except Exception as exc:
                    # Spawn failed; the next tick retries (up to the cap).
                    _event(
                        "respawn_failed",
                        worker=worker_id,
                        attempt=handle.restarts,
                        error=str(exc),
                    )
                    continue
                finally:
                    self._respawns_inflight.discard(worker_id)
                self._clients[worker_id] = self._make_client(handle)
                self._ring.add(worker_id)
                _event(
                    "respawn",
                    worker=worker_id,
                    restarts=handle.restarts,
                    port=handle.port,
                )

    def _mark_dead(self, worker_id: int) -> None:
        """Take a worker out of rotation (idempotent, loop-thread only)."""
        self._ring.remove(worker_id)
        client = self._clients.get(worker_id)
        if client is not None:
            client.close()

    async def drain(self, bound: asyncio.Server, timeout: float = 30.0) -> None:
        """Graceful fleet shutdown: stop accepting, finish in-flight
        requests, SIGTERM every worker (each drains its own queue), reap.
        """
        _event("drain", stage="begin")
        self.begin_drain()
        bound.close()
        await bound.wait_closed()
        await self.drain_requests(timeout)
        if self._supervisor is not None:
            self._supervisor.cancel()
            self._supervisor = None
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(None, handle.shutdown, timeout)
                for handle in self._handles.values()
            )
        )
        self.close()
        _event("drain", stage="complete")

    def close(self) -> None:
        """Tear the fleet down hard (idempotent; safe off the loop).

        The graceful path is :meth:`drain`; this is the unconditional
        cleanup behind ``finally:`` blocks and test harness exits.
        """
        if self._closed:
            return
        self._closed = True
        supervisor = self._supervisor
        if supervisor is not None:
            self._supervisor = None
            try:
                supervisor.cancel()
            except RuntimeError:
                # Called after the event loop already closed (harness
                # teardown); the task died with the loop.
                pass
        for handle in self._handles.values():
            handle.shutdown(timeout=2)

    # -- routing ----------------------------------------------------------

    @staticmethod
    def _failure_reason(exc: BaseException) -> str:
        """Classify one transport failure for the structured failover log."""
        if isinstance(exc, ConnectionRefusedError):
            return "connection-refused"
        if isinstance(exc, ConnectionResetError):
            return "connection-reset"
        if isinstance(exc, asyncio.IncompleteReadError):
            return "truncated-response"
        return type(exc).__name__

    async def _forward(self, key: str, path: str, body: bytes):
        """Send one request to ``key``'s shard, failing over around the ring.

        Returns ``(status, headers, payload)`` from the first worker that
        answers.  Failures are classified, not pooled:

        * a **connection-level** failure (refused, reset, truncated
          response — the worker process is gone or its socket is broken)
          marks the worker dead, logs the reason, and walks to the ring
          successor immediately;
        * a **timeout** (``request_timeout`` elapsed — the worker is
          alive but slow, possibly mid-solve) retries the *same* worker
          up to ``retries`` times with seeded exponential backoff +
          jitter, then steps to the successor for this request only —
          the slow worker stays in the ring.

        Only an empty ring (or unbroken timeouts) past the failover
        deadline surfaces as 503.
        """
        # Propagate the ambient trace to the owning worker: the worker's
        # front door adopts it, so one trace id spans both hops.
        ctx = current_trace()
        trace_headers = (
            {TRACE_HEADER: ctx.child().header_value()} if ctx is not None else None
        )
        deadline = time.monotonic() + self.FAILOVER_TIMEOUT_S
        timed_out: set[int] = set()
        while True:
            order = self._ring.preference(key)
            if not order:
                if time.monotonic() >= deadline:
                    raise _BadRequest(
                        HTTPStatus.SERVICE_UNAVAILABLE, "no workers available"
                    )
                # The supervisor may be mid-respawn; give it a beat.
                await asyncio.sleep(0.05)
                continue
            candidates = [w for w in order if w not in timed_out]
            if not candidates:
                # Every live worker exhausted its timeout budget for this
                # request; start a fresh pass rather than 503 a fleet
                # that is merely slow.
                timed_out.clear()
                candidates = order
            worker_id = candidates[0]
            client = self._clients[worker_id]
            attempt = 0
            while True:
                try:
                    with recorder().span(
                        ctx.trace_id if ctx else None,
                        "router.forward",
                        tenant=ctx.tenant if ctx else "default",
                        worker=str(worker_id),
                    ):
                        if self.request_timeout is not None:
                            return await asyncio.wait_for(
                                client.request("POST", path, body, trace_headers),
                                self.request_timeout,
                            )
                        return await client.request("POST", path, body, trace_headers)
                except asyncio.TimeoutError:
                    # NB: must precede the OSError family — TimeoutError
                    # is an OSError subclass on 3.11+.
                    self._request_retries += 1
                    if time.monotonic() >= deadline:
                        raise _BadRequest(
                            HTTPStatus.SERVICE_UNAVAILABLE,
                            f"worker {worker_id} timed out past the failover deadline",
                        )
                    if attempt >= self.retries:
                        self._retries += 1
                        timed_out.add(worker_id)
                        _event(
                            "failover",
                            worker=worker_id,
                            reason="timeout",
                            path=path,
                            attempts=attempt + 1,
                        )
                        break
                    delay = self.backoff_s * (2**attempt) * (0.5 + self._retry_rng.random())
                    attempt += 1
                    await asyncio.sleep(delay)
                except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                    self._retries += 1
                    self._mark_dead(worker_id)
                    _event(
                        "failover",
                        worker=worker_id,
                        reason=self._failure_reason(exc),
                        path=path,
                        error=str(exc),
                    )
                    if time.monotonic() >= deadline:
                        raise _BadRequest(
                            HTTPStatus.SERVICE_UNAVAILABLE,
                            f"worker {worker_id} unavailable: {exc}",
                        )
                    break

    async def _routed(self, key: str, path: str, body: bytes):
        """Route with front-door coalescing: concurrent identical keys
        ride the leader's forward instead of hitting the worker N times.

        Returns ``(status, headers, payload, source)`` where ``source``
        is the worker's ``X-Repro-Cache`` verdict for the leader and
        ``"coalesced"`` for followers.  Error responses (non-200) resolve
        the leader future empty, so each follower retries independently —
        same contract as the worker-level coalescing.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            result = await asyncio.shield(existing)
            if result is not None:
                status, headers, payload = result
                return status, headers, payload, "coalesced"
        leader: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = leader
        result = None
        try:
            status, headers, payload = await self._forward(key, path, body)
            if status == 200:
                result = (status, headers, payload)
            return status, headers, payload, headers.get("x-repro-cache", "miss")
        finally:
            if self._inflight.get(key) is leader:
                del self._inflight[key]
            if not leader.done():
                leader.set_result(result)

    # -- endpoints ---------------------------------------------------------

    ROUTES = {
        ("GET", "/healthz"): "_healthz",
        ("GET", "/metrics"): "_metrics",
        ("POST", "/solve"): "_solve",
        ("POST", "/portfolio"): "_portfolio",
        ("POST", "/session"): "_session_create",
    }
    ENDPOINTS = frozenset(path for _, path in ROUTES)
    DYNAMIC_ROUTES = (
        (
            "POST",
            re.compile(r"/session/(?P<session_id>[^/]+)/step"),
            "_session_step",
            "/session/{id}/step",
        ),
        (
            "DELETE",
            re.compile(r"/session/(?P<session_id>[^/]+)"),
            "_session_delete",
            "/session/{id}",
        ),
        (
            "GET",
            re.compile(r"/debug/trace/(?P<trace_id>[^/]+)"),
            "_debug_trace",
            "/debug/trace/{id}",
        ),
    )

    async def _debug_trace(
        self, body: bytes, headers, trace_id: str
    ) -> tuple[int, dict[str, str], bytes]:
        """The fleet-merged span tree of one trace: the router's own spans
        plus every live worker's, sorted into one document."""
        doc = recorder().trace_document(trace_id)
        spans = list(doc["spans"])

        async def fetch(worker_id: int):
            try:
                status, _headers, payload = await self._clients[worker_id].request(
                    "GET", f"/debug/trace/{trace_id}"
                )
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                return []
            if status != 200:
                return []
            try:
                return json.loads(payload).get("spans", [])
            except (json.JSONDecodeError, AttributeError):
                return []

        order = sorted(
            worker_id
            for worker_id, handle in self._handles.items()
            if handle.alive() and worker_id in self._ring
        )
        for worker_spans in await asyncio.gather(*(fetch(w) for w in order)):
            spans.extend(worker_spans)
        spans.sort(key=lambda s: s.get("start_s", 0.0))
        merged = {"trace": trace_id, "spans": spans}
        return 200, {}, json.dumps(merged, sort_keys=True).encode("utf-8")

    @staticmethod
    def _session_key(session_id: str) -> str:
        """The ring affinity key of one session: every create/step/delete
        of the session routes to the same worker (until it dies)."""
        return f"session|{session_id}"

    async def _session_create(
        self, body: bytes, headers
    ) -> tuple[int, dict[str, str], bytes]:
        if self._draining:
            raise _BadRequest(
                HTTPStatus.SERVICE_UNAVAILABLE,
                "draining: not accepting new sessions",
            )
        data = parse_json_body(body)
        algorithm = data.get("algorithm")
        if algorithm is not None and not isinstance(algorithm, str):
            raise _BadRequest(HTTPStatus.BAD_REQUEST, "'algorithm' must be a string")
        params = data.get("params")
        if params is not None and not isinstance(params, dict):
            raise _BadRequest(HTTPStatus.BAD_REQUEST, "'params' must be an object")
        self._session_seq += 1
        session_id = f"s{self._session_seq:06d}"
        # Forward with an explicit id so the owning worker mirrors the
        # session under the same name the client will step it by.
        forwarded = dict(data)
        forwarded["id"] = session_id
        status, _resp_headers, payload = await self._forward(
            self._session_key(session_id),
            "/session",
            json.dumps(forwarded).encode("utf-8"),
        )
        if status == 200:
            self._sessions[session_id] = {"algorithm": algorithm, "params": params}
        return status, {}, payload

    async def _session_step(
        self, body: bytes, headers, session_id: str
    ) -> tuple[int, dict[str, str], bytes]:
        session = self._sessions.get(session_id)
        if session is None:
            raise _BadRequest(HTTPStatus.NOT_FOUND, f"no such session: {session_id}")
        data = parse_json_body(body)
        # Enrich with the session's solve defaults: the worker resolves
        # the step exactly like a one-shot /solve, and — crucially — a
        # failover successor can rebuild the session from this body alone.
        enriched = dict(data)
        if "algorithm" not in enriched and session["algorithm"] is not None:
            enriched["algorithm"] = session["algorithm"]
        if "params" not in enriched and session["params"] is not None:
            enriched["params"] = session["params"]
        # No front-door coalescing here: distinct steps of one session
        # share the affinity key, and coalescing them would wrongly serve
        # one step's placement for another.
        status, resp_headers, payload = await self._forward(
            self._session_key(session_id),
            f"/session/{session_id}/step",
            json.dumps(enriched).encode("utf-8"),
        )
        self._session_steps += 1
        extra = (
            {"X-Repro-Cache": resp_headers.get("x-repro-cache", "miss")}
            if status == 200
            else {}
        )
        return status, extra, payload

    async def _session_delete(
        self, body: bytes, headers, session_id: str
    ) -> tuple[int, dict[str, str], bytes]:
        session = self._sessions.pop(session_id, None)
        if session is None:
            raise _BadRequest(HTTPStatus.NOT_FOUND, f"no such session: {session_id}")
        try:
            status, _resp_headers, payload = await self._forward_delete(session_id)
        except _BadRequest:
            # The owner is gone and its soft state with it — the registry
            # removal above already completed the teardown.
            status, payload = 0, b""
        if status != 200:
            payload = json.dumps(
                {"deleted": session_id, "steps": None},
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
        return 200, {}, payload

    async def _forward_delete(self, session_id: str):
        """DELETE has no retry semantics to honour — one attempt at the
        owner is enough (soft state dies with the worker anyway)."""
        key = self._session_key(session_id)
        order = self._ring.preference(key)
        if not order:
            raise _BadRequest(HTTPStatus.SERVICE_UNAVAILABLE, "no workers available")
        client = self._clients[order[0]]
        try:
            return await client.request("DELETE", f"/session/{session_id}")
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            raise _BadRequest(
                HTTPStatus.SERVICE_UNAVAILABLE, f"worker unavailable: {exc}"
            )

    async def _solve(self, body: bytes, headers) -> tuple[int, dict[str, str], bytes]:
        ctx = current_trace()
        with recorder().span(
            ctx.trace_id if ctx is not None else None,
            "router.route",
            tenant=ctx.tenant if ctx is not None else "default",
        ):
            data = parse_json_body(body)
            key, name, _params, _instance = resolve_solve_request(data)
        self.metrics.count_algorithm(name)
        status, _resp_headers, payload, source = await self._routed(key, "/solve", body)
        extra = {"X-Repro-Cache": source} if status == 200 else {}
        return status, extra, payload

    async def _portfolio(self, body: bytes, headers) -> tuple[int, dict[str, str], bytes]:
        ctx = current_trace()
        with recorder().span(
            ctx.trace_id if ctx is not None else None,
            "router.route",
            tenant=ctx.tenant if ctx is not None else "default",
        ):
            data = parse_json_body(body)
            key, _instance, _algorithms, _params = resolve_portfolio_request(data)
        status, _resp_headers, payload, source = await self._routed(key, "/portfolio", body)
        extra = {"X-Repro-Cache": source} if status == 200 else {}
        return status, extra, payload

    def _fleet_counts(self) -> dict[str, int]:
        alive = sum(1 for handle in self._handles.values() if handle.alive())
        return {
            "total": self.n_workers,
            "alive": alive,
            "restarts": sum(handle.restarts for handle in self._handles.values()),
        }

    async def _healthz(self, body: bytes, headers) -> tuple[int, dict[str, str], bytes]:
        from .. import __version__

        counts = self._fleet_counts()
        payload = json.dumps(
            {
                "status": "ok" if counts["alive"] == counts["total"] else "degraded",
                "version": __version__,
                "uptime_s": self.metrics.uptime_s,
                "workers": counts,
            }
        ).encode("utf-8")
        return 200, {}, payload

    async def _worker_snapshots(self) -> dict[str, dict]:
        """Fetch ``/metrics`` from every live worker concurrently."""
        order = sorted(
            worker_id
            for worker_id, handle in self._handles.items()
            if handle.alive() and worker_id in self._ring
        )

        async def fetch(worker_id: int):
            try:
                status, _headers, payload = await self._clients[worker_id].request(
                    "GET", "/metrics"
                )
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                return None
            return json.loads(payload) if status == 200 else None

        snapshots = await asyncio.gather(*(fetch(worker_id) for worker_id in order))
        return {
            str(worker_id): snap
            for worker_id, snap in zip(order, snapshots)
            if snap is not None
        }

    @staticmethod
    def _aggregate(workers: dict[str, dict]) -> tuple[dict, dict]:
        """Sum the fleet's queue/cache counters into the single-process
        document shape (``max_batch`` maxes, ``mean_batch`` recomputes)."""
        queue: dict[str, float] = {
            "depth": 0, "submitted": 0, "completed": 0,
            "rejected": 0, "batches": 0, "max_batch": 0,
        }
        cache: dict[str, float] = {
            "hits": 0, "misses": 0, "evictions": 0, "spills": 0,
            "spill_hits": 0, "corruptions": 0, "entries": 0, "bytes": 0,
            "warm_hits": 0,
        }
        for snap in workers.values():
            wq, wc = snap.get("queue", {}), snap.get("cache", {})
            for field in ("depth", "submitted", "completed", "rejected", "batches"):
                queue[field] += wq.get(field, 0)
            queue["max_batch"] = max(queue["max_batch"], wq.get("max_batch", 0))
            for field in cache:
                cache[field] += wc.get(field, 0)
        queue["mean_batch"] = (
            queue["completed"] / queue["batches"] if queue["batches"] else 0.0
        )
        return queue, cache

    async def _metrics(self, body: bytes, headers) -> tuple[int, dict[str, str], bytes]:
        from .. import kernels

        workers = await self._worker_snapshots()
        queue, cache = self._aggregate(workers)
        snapshot = self.metrics.snapshot()
        # The router's own process tier; workers report theirs per-worker
        # (identical by construction — serve passes --kernel-tier through
        # the worker config before any worker resolves it).
        snapshot["kernel"] = kernels.tier_info()
        snapshot["queue"] = queue
        snapshot["cache"] = cache
        snapshot["router"] = {
            "workers": self._fleet_counts(),
            "retries": self._retries,
            "request_retries": self._request_retries,
            "sessions": {
                "active": len(self._sessions),
                "created": self._session_seq,
                "steps": self._session_steps,
            },
        }
        snapshot["sessions"] = snapshot["router"]["sessions"]
        snapshot["spans"] = recorder().histogram_snapshot()
        if self.faults is not None:
            snapshot["router"]["faults_injected"] = self.faults.fired + sum(
                snap.get("faults", {}).get("injected", 0) for snap in workers.values()
            )
        snapshot["workers"] = workers
        if _wants_prometheus(headers):
            samples = prometheus_samples(snapshot)
            counts = snapshot["router"]["workers"]
            samples.append(("repro_workers_total", {}, float(counts["total"])))
            samples.append(("repro_workers_alive", {}, float(counts["alive"])))
            samples.append(("repro_worker_restarts_total", {}, float(counts["restarts"])))
            samples.append(("repro_router_retries_total", {}, float(self._retries)))
            samples.append(("repro_retries_total", {}, float(self._request_retries)))
            if self.faults is not None:
                samples.append((
                    "repro_faults_injected_total",
                    {"scope": "fleet"},
                    float(snapshot["router"]["faults_injected"]),
                ))
            for worker_id, snap in workers.items():
                samples.extend(prometheus_samples(snap, labels={"worker": worker_id}))
            # Stable output: group samples by metric name so each # TYPE
            # header precedes all of its series, fleet and per-worker.
            rank: dict[str, int] = {}
            for name, _, _ in samples:
                rank.setdefault(name, len(rank))
            samples.sort(key=lambda s: (rank[s[0]], str(s[1])))
            return 200, {"Content-Type": PROMETHEUS_CONTENT_TYPE}, render_prometheus(samples)
        return 200, {}, json.dumps(snapshot, sort_keys=True).encode("utf-8")
