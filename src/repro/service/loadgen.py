"""Load generator for the solve service: closed- and open-loop clients.

Three traffic modes:

* **closed loop** — ``concurrency`` workers each issue their next request
  the moment the previous response lands.  Measures saturation
  throughput: the offered load adapts to the service rate, so the result
  is "how fast can this server go".
* **open loop** — requests fire at *scheduled* arrival times drawn from a
  :mod:`repro.sim.stream` source (by default the same seeded
  :func:`~repro.sim.stream.poisson_stream` the online simulator replays),
  regardless of whether earlier responses returned.  Measures behaviour
  under a fixed offered rate: latency inflates and lateness accumulates
  when the service falls behind — exactly what closed loops hide.
* **session** — each of ``sessions`` threads opens a long-lived ``POST
  /session`` and replays a seeded :func:`~repro.sim.stream.poisson_stream`
  through it as a sequence of growing-prefix instances (every step = the
  previous instance plus the newly arrived tasks), stepping as fast as
  responses land.  This is the online-workload mode: against a
  ``warm_delta``-enabled server most steps should come back ``X-Repro-
  Cache: warm`` (counted separately as ``warm_hits``).

All modes reuse ``http.client`` over keep-alive connections, record
per-request latency, count cache hits via the server's ``X-Repro-Cache``
header, and summarise into a :class:`LoadResult` (p50/p95/p99 and a
log-scaled latency histogram the CLI renders).  Every response also
carries an ``X-Repro-Trace`` id; the generator keeps the id alongside
each latency sample and, after the run, pulls the span breakdown of the
three slowest requests from the server's ``/debug/trace/{id}`` ring so a
load report ends with "here is where the tail spent its time".

Payloads come from :func:`solve_payloads`: ``distinct`` seeded instances
cycled across ``requests`` posts, so ``distinct=1`` measures the pure
cache hot path and ``distinct=requests`` the cold solve path.
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence
from urllib.parse import urlsplit

from ..core.errors import InvalidInstanceError

__all__ = [
    "LoadResult",
    "solve_payloads",
    "session_step_bodies",
    "arrival_offsets",
    "run_closed_loop",
    "run_open_loop",
    "run_session_loop",
    "sweep_workers",
]


# ----------------------------------------------------------------------
# payloads and arrivals
# ----------------------------------------------------------------------

def solve_payloads(
    distinct: int,
    *,
    n_rects: int = 12,
    seed: int = 0,
    algorithm: str | None = None,
    params: dict | None = None,
) -> list[bytes]:
    """``distinct`` seeded ``POST /solve`` bodies (deterministic per seed).

    Instances are plain power-law workloads (the bench suite's staple);
    the request cycle repeats them, so a run with ``distinct <``
    ``requests`` exercises the content-addressed cache on every repeat.
    """
    import numpy as np

    from ..core.instance import StripPackingInstance
    from ..core.serialize import instance_to_dict
    from ..workloads.random_rects import powerlaw_rects

    if distinct < 1:
        raise InvalidInstanceError(f"distinct must be >= 1, got {distinct}")
    if n_rects < 1:
        raise InvalidInstanceError(f"n_rects must be >= 1, got {n_rects}")
    rng = np.random.default_rng(seed)
    payloads = []
    for _ in range(distinct):
        body: dict = {
            "instance": instance_to_dict(StripPackingInstance(powerlaw_rects(n_rects, rng)))
        }
        if algorithm is not None:
            body["algorithm"] = algorithm
        if params is not None:
            body["params"] = params
        payloads.append(json.dumps(body).encode("utf-8"))
    return payloads


def session_step_bodies(
    sessions: int,
    steps: int,
    *,
    base_rects: int = 20,
    step_rects: int = 2,
    K: int = 6,
    rate: float = 4.0,
    seed: int = 0,
) -> list[list[bytes]]:
    """Per-session growing-prefix step bodies replaying a Poisson stream.

    Each session draws its own seeded
    :func:`~repro.sim.stream.poisson_stream`; step ``j`` is the release
    instance over the first ``base_rects + j * step_rects`` arrivals.
    Consecutive steps therefore differ by an add-only rect delta — the
    exact shape :func:`repro.engine.warmstart.repair_placement` repairs —
    so a session replay is the canonical warm-start workload.
    """
    import numpy as np

    from ..core.instance import ReleaseInstance
    from ..core.serialize import instance_to_dict
    from ..sim.stream import poisson_stream

    if sessions < 1:
        raise InvalidInstanceError(f"sessions must be >= 1, got {sessions}")
    if steps < 1:
        raise InvalidInstanceError(f"steps must be >= 1, got {steps}")
    if base_rects < 1:
        raise InvalidInstanceError(f"base_rects must be >= 1, got {base_rects}")
    if step_rects < 0:
        raise InvalidInstanceError(f"step_rects must be >= 0, got {step_rects}")
    total = base_rects + (steps - 1) * step_rects
    out: list[list[bytes]] = []
    for s in range(sessions):
        stream = poisson_stream(K, np.random.default_rng(seed + s), rate=rate)
        tasks = list(itertools.islice(iter(stream), total))
        bodies = []
        for j in range(steps):
            prefix = tasks[: base_rects + j * step_rects]
            instance = ReleaseInstance(prefix, K)
            bodies.append(json.dumps({"instance": instance_to_dict(instance)}).encode("utf-8"))
        out.append(bodies)
    return out


def arrival_offsets(n: int, *, rate: float = 100.0, seed: int = 0, stream=None) -> list[float]:
    """The first ``n`` arrival times (seconds from start) of a task stream.

    ``stream`` defaults to the simulator's seeded
    :func:`~repro.sim.stream.poisson_stream` at ``rate`` arrivals/s — the
    open-loop generator and the online simulator draw from the same
    traffic model, so a simulated arrival trace and a load test are
    directly comparable.  Any :class:`~repro.sim.stream.TaskStream` whose
    releases are in seconds works.
    """
    if n < 1:
        raise InvalidInstanceError(f"n must be >= 1, got {n}")
    if stream is None:
        import numpy as np

        from ..sim.stream import poisson_stream

        if rate <= 0:
            raise InvalidInstanceError(f"rate must be positive, got {rate!r}")
        stream = poisson_stream(4, np.random.default_rng(seed), rate=rate)
    return [task.release for task in itertools.islice(iter(stream), n)]


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LoadResult:
    """Outcome of one load run: counts, wall time, latency distribution."""

    mode: str
    requests: int
    ok: int
    errors: int
    cache_hits: int
    duration_s: float
    latencies_s: tuple[float, ...]
    lateness_s: tuple[float, ...] = ()
    status_counts: dict = field(default_factory=dict)
    warm_hits: int = 0
    #: Span breakdowns of the slowest traced requests (slowest first):
    #: ``{"trace", "latency_ms", "spans": [...]}`` per entry.
    slow_traces: tuple = ()

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall time."""
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        """The ``q``-percentile request latency, in milliseconds."""
        from ..bench.runner import percentile

        if not self.latencies_s:
            return 0.0
        return percentile(list(self.latencies_s), q) * 1e3

    @property
    def max_lateness_s(self) -> float:
        """Worst dispatch lag behind the open-loop schedule (0 for closed)."""
        return max(self.lateness_s, default=0.0)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {q: self.latency_ms(q) for q in (50.0, 95.0, 99.0)},
            "max_lateness_s": self.max_lateness_s,
            "status_counts": dict(self.status_counts),
            "warm_hits": self.warm_hits,
            "slow_traces": [dict(entry) for entry in self.slow_traces],
        }

    def summary_lines(self) -> list[str]:
        hit = f"{self.cache_hits}/{self.requests}" if self.requests else "0/0"
        lines = [
            f"mode = {self.mode}: {self.ok} ok, {self.errors} errors "
            f"in {self.duration_s:.3f}s ({self.throughput_rps:.1f} req/s)",
            f"latency p50/p95/p99 = {self.latency_ms(50):.2f}/"
            f"{self.latency_ms(95):.2f}/{self.latency_ms(99):.2f} ms, "
            f"cache hits = {hit}",
        ]
        if self.mode == "open":
            lines.append(f"max dispatch lateness = {self.max_lateness_s * 1e3:.2f} ms")
        if self.mode == "session":
            warm = f"{self.warm_hits}/{self.requests}" if self.requests else "0/0"
            lines.append(f"warm starts = {warm}")
        for entry in self.slow_traces:
            phases = ", ".join(
                f"{span['name']}={span['duration_s'] * 1e3:.2f}ms"
                for span in entry.get("spans", ())
            )
            lines.append(
                f"slow trace {entry['trace']}: {entry['latency_ms']:.2f} ms"
                + (f" ({phases})" if phases else "")
            )
        return lines

    def histogram_lines(self, width: int = 40) -> list[str]:
        """Doubling latency buckets from 0.1 ms, bars scaled to ``width``."""
        if not self.latencies_s:
            return ["(no samples)"]
        edges = [0.0001]
        while edges[-1] < max(self.latencies_s):
            edges.append(edges[-1] * 2)
        counts = [0] * len(edges)
        for lat in self.latencies_s:
            for i, edge in enumerate(edges):
                if lat <= edge:
                    counts[i] += 1
                    break
        peak = max(counts)
        lines = []
        for edge, count in zip(edges, counts):
            if count == 0 and not lines:
                continue  # skip leading empty buckets
            bar = "#" * max(1 if count else 0, round(width * count / peak))
            lines.append(f"<= {edge * 1e3:8.1f} ms  {count:6d}  {bar}")
        return lines


# ----------------------------------------------------------------------
# the two loops
# ----------------------------------------------------------------------

def _parse_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("", "http") or not parts.hostname:
        raise InvalidInstanceError(f"loadgen needs a plain http:// URL, got {url!r}")
    return parts.hostname, parts.port or 80


class _Recorder:
    """Shared, locked accumulation of per-request outcomes."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: list[float] = []
        self.lateness: list[float] = []
        self.traced: list[tuple[float, str]] = []
        self.status_counts: dict[str, int] = {}
        self.ok = 0
        self.errors = 0
        self.cache_hits = 0
        self.warm_hits = 0

    def record(self, status: int, latency_s: float, cache_header: str | None,
               lateness_s: float | None = None, trace_id: str | None = None) -> None:
        with self.lock:
            self.latencies.append(latency_s)
            if trace_id:
                self.traced.append((latency_s, trace_id))
            key = str(status)
            self.status_counts[key] = self.status_counts.get(key, 0) + 1
            if status == 200:
                self.ok += 1
            else:
                self.errors += 1
            if cache_header in ("hit", "coalesced"):
                # Both mean "no dedicated solve ran for this request".
                self.cache_hits += 1
            elif cache_header == "warm":
                # A dedicated (but repair-only) solve ran: count separately.
                self.warm_hits += 1
            if lateness_s is not None:
                self.lateness.append(lateness_s)


def _trace_of(response) -> str | None:
    """The trace id from an ``X-Repro-Trace: <id>;<span>;<tenant>`` header."""
    header = response.getheader("X-Repro-Trace")
    if not header:
        return None
    return header.split(";", 1)[0] or None


def _post_one(
    conn: http.client.HTTPConnection, payload: bytes
) -> tuple[int, str | None, str | None]:
    conn.request(
        "POST", "/solve", body=payload, headers={"Content-Type": "application/json"}
    )
    response = conn.getresponse()
    response.read()  # drain so the keep-alive connection is reusable
    return response.status, response.getheader("X-Repro-Cache"), _trace_of(response)


def _slow_traces(
    host: str, port: int, recorder: _Recorder, *, top: int = 3, timeout: float = 10.0
) -> tuple:
    """Span breakdowns for the ``top`` slowest traced requests.

    Best-effort by design: the run's samples are already complete, so a
    server that has shut down, trimmed its span ring, or never traced
    simply yields fewer (or zero) entries rather than an error.
    """
    slowest = sorted(recorder.traced, key=lambda pair: pair[0], reverse=True)[:top]
    if not slowest:
        return ()
    entries = []
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        for latency_s, trace_id in slowest:
            spans: list = []
            try:
                conn.request("GET", f"/debug/trace/{trace_id}")
                response = conn.getresponse()
                raw = response.read()
                if response.status == 200:
                    spans = json.loads(raw).get("spans", [])
            except (OSError, http.client.HTTPException, ValueError):
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=timeout)
            entries.append(
                {
                    "trace": trace_id,
                    "latency_ms": latency_s * 1e3,
                    "spans": spans,
                }
            )
    finally:
        conn.close()
    return tuple(entries)


def run_closed_loop(
    url: str,
    payloads: Sequence[bytes],
    *,
    requests: int,
    concurrency: int = 4,
    timeout: float = 30.0,
) -> LoadResult:
    """``concurrency`` workers, each firing its next request on response."""
    if requests < 1:
        raise InvalidInstanceError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise InvalidInstanceError(f"concurrency must be >= 1, got {concurrency}")
    if not payloads:
        raise InvalidInstanceError("payloads must be non-empty")
    host, port = _parse_url(url)
    recorder = _Recorder()
    counter = itertools.count()

    def worker() -> None:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            while True:
                i = next(counter)
                if i >= requests:
                    break
                t0 = time.perf_counter()
                try:
                    status, cache, trace = _post_one(conn, payloads[i % len(payloads)])
                except (OSError, http.client.HTTPException):
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=timeout)
                    recorder.record(599, time.perf_counter() - t0, None)
                    continue
                recorder.record(status, time.perf_counter() - t0, cache, trace_id=trace)
        finally:
            conn.close()

    started = time.perf_counter()
    threads = [threading.Thread(target=worker, daemon=True) for _ in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - started
    return LoadResult(
        mode="closed",
        requests=len(recorder.latencies),
        ok=recorder.ok,
        errors=recorder.errors,
        cache_hits=recorder.cache_hits,
        duration_s=duration,
        latencies_s=tuple(recorder.latencies),
        status_counts=recorder.status_counts,
        warm_hits=recorder.warm_hits,
        slow_traces=_slow_traces(host, port, recorder, timeout=timeout),
    )


def run_open_loop(
    url: str,
    payloads: Sequence[bytes],
    *,
    requests: int,
    rate: float = 100.0,
    seed: int = 0,
    stream=None,
    max_workers: int = 32,
    timeout: float = 30.0,
) -> LoadResult:
    """Fire requests at scheduled stream arrivals, independent of responses.

    A pool of ``max_workers`` keep-alive connections serves the schedule;
    per-request *lateness* (actual dispatch minus scheduled time) is
    recorded, so overload shows up as growing lateness rather than as the
    silently shrinking offered rate a closed loop would produce.
    """
    if requests < 1:
        raise InvalidInstanceError(f"requests must be >= 1, got {requests}")
    if max_workers < 1:
        raise InvalidInstanceError(f"max_workers must be >= 1, got {max_workers}")
    if not payloads:
        raise InvalidInstanceError("payloads must be non-empty")
    host, port = _parse_url(url)
    offsets = arrival_offsets(requests, rate=rate, seed=seed, stream=stream)
    recorder = _Recorder()
    schedule: list[tuple[float, bytes]] = [
        (offset, payloads[i % len(payloads)]) for i, offset in enumerate(offsets)
    ]
    position = itertools.count()
    started = time.perf_counter()

    def worker() -> None:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            while True:
                i = next(position)
                if i >= len(schedule):
                    break
                offset, payload = schedule[i]
                now = time.perf_counter() - started
                if offset > now:
                    time.sleep(offset - now)
                lateness = max(0.0, (time.perf_counter() - started) - offset)
                t0 = time.perf_counter()
                try:
                    status, cache, trace = _post_one(conn, payload)
                except (OSError, http.client.HTTPException):
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=timeout)
                    recorder.record(599, time.perf_counter() - t0, None, lateness)
                    continue
                recorder.record(
                    status, time.perf_counter() - t0, cache, lateness, trace_id=trace
                )
        finally:
            conn.close()

    workers = min(max_workers, requests)
    threads = [threading.Thread(target=worker, daemon=True) for _ in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - started
    return LoadResult(
        mode="open",
        requests=len(recorder.latencies),
        ok=recorder.ok,
        errors=recorder.errors,
        cache_hits=recorder.cache_hits,
        duration_s=duration,
        latencies_s=tuple(recorder.latencies),
        lateness_s=tuple(recorder.lateness),
        status_counts=recorder.status_counts,
        warm_hits=recorder.warm_hits,
        slow_traces=_slow_traces(host, port, recorder, timeout=timeout),
    )


def run_session_loop(
    url: str,
    *,
    sessions: int = 4,
    steps: int = 8,
    base_rects: int = 20,
    step_rects: int = 2,
    seed: int = 0,
    algorithm: str | None = None,
    params: dict | None = None,
    timeout: float = 30.0,
) -> LoadResult:
    """One thread per session: create, replay a stream step by step, delete.

    Only the ``/session/{id}/step`` posts are recorded as samples — the
    create/delete envelope is bookkeeping, not the workload.  A failed
    create is recorded as one error sample and the session is abandoned;
    a step whose connection dies is recorded as a synthetic ``599`` and
    the loop reconnects and continues (the server's session registry is
    soft state, so a retried step on a fresh connection still lands).
    """
    if sessions < 1:
        raise InvalidInstanceError(f"sessions must be >= 1, got {sessions}")
    if steps < 1:
        raise InvalidInstanceError(f"steps must be >= 1, got {steps}")
    host, port = _parse_url(url)
    per_session = session_step_bodies(
        sessions, steps, base_rects=base_rects, step_rects=step_rects, seed=seed
    )
    create_body: dict = {}
    if algorithm is not None:
        create_body["algorithm"] = algorithm
    if params is not None:
        create_body["params"] = params
    create_payload = json.dumps(create_body).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    recorder = _Recorder()

    def worker(bodies: list[bytes]) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            t0 = time.perf_counter()
            try:
                conn.request("POST", "/session", body=create_payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                if response.status != 200:
                    recorder.record(response.status, time.perf_counter() - t0, None)
                    return
                sid = json.loads(raw)["session"]["id"]
            except (OSError, http.client.HTTPException, KeyError, ValueError):
                recorder.record(599, time.perf_counter() - t0, None)
                return
            path = f"/session/{sid}/step"
            for payload in bodies:
                t0 = time.perf_counter()
                try:
                    conn.request("POST", path, body=payload, headers=headers)
                    response = conn.getresponse()
                    response.read()
                    status, cache = response.status, response.getheader("X-Repro-Cache")
                    trace = _trace_of(response)
                except (OSError, http.client.HTTPException):
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=timeout)
                    recorder.record(599, time.perf_counter() - t0, None)
                    continue
                recorder.record(status, time.perf_counter() - t0, cache, trace_id=trace)
            try:
                conn.request("DELETE", f"/session/{sid}", headers=headers)
                conn.getresponse().read()
            except (OSError, http.client.HTTPException):
                pass  # teardown is best-effort; the run's samples are complete
        finally:
            conn.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(bodies,), daemon=True)
        for bodies in per_session
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - started
    return LoadResult(
        mode="session",
        requests=len(recorder.latencies),
        ok=recorder.ok,
        errors=recorder.errors,
        cache_hits=recorder.cache_hits,
        duration_s=duration,
        latencies_s=tuple(recorder.latencies),
        status_counts=recorder.status_counts,
        warm_hits=recorder.warm_hits,
        slow_traces=_slow_traces(host, port, recorder, timeout=timeout),
    )


# ----------------------------------------------------------------------
# worker-count sweeps
# ----------------------------------------------------------------------

def sweep_workers(
    counts: Sequence[int],
    payloads: Sequence[bytes],
    *,
    requests: int,
    concurrency: int = 4,
    worker_config: dict | None = None,
    router_config: dict | None = None,
) -> list[tuple[int, LoadResult]]:
    """Closed-loop load against a fresh in-process fleet per worker count.

    The scaling-curve primitive behind ``repro loadtest --workers-sweep``
    and the ``service_scaling`` bench: for each count a new server is
    built (``1`` = the single-process :class:`~repro.service.server
    .SolveServer` — exactly the non-sharded path — ``>1`` = a
    :class:`~repro.service.router.RouterServer` fleet), driven with the
    *same* payload cycle, and torn down, so the only variable across
    steps is the worker count.  Returns ``(count, result)`` pairs in
    input order.

    ``router_config`` holds fleet-only :class:`RouterServer` kwargs
    (``fault_plan``, ``request_timeout``, ``retries``, ``backoff_ms``,
    ``max_restarts``); it is ignored on the ``count == 1`` single-process
    path, which has no router.
    """
    from .router import RouterServer
    from .server import InProcessServer, SolveServer

    if not counts:
        raise InvalidInstanceError("counts must be non-empty")
    if any(count < 1 for count in counts):
        raise InvalidInstanceError(f"worker counts must be >= 1, got {list(counts)}")
    config = dict(worker_config or {})
    fleet_kwargs = dict(router_config or {})
    results: list[tuple[int, LoadResult]] = []
    for count in counts:
        server = (
            SolveServer(**config)
            if count == 1
            else RouterServer(workers=count, worker_config=config, **fleet_kwargs)
        )
        with InProcessServer(server) as srv:
            result = run_closed_loop(
                srv.url, payloads, requests=requests, concurrency=concurrency
            )
        results.append((count, result))
    return results
