"""Precedence DAG substrate: graph structure, critical-path bound ``F``,
generators and validators (Section 2 of the paper)."""

from .critical_path import F_of_set, compute_F, critical_path, start_lower_bounds
from .generators import (
    chain_forest,
    in_tree,
    layered_dag,
    out_tree,
    random_order_dag,
    series_parallel_dag,
)
from .graph import TaskDAG
from .validate import check_same_universe, is_antichain, level_set

__all__ = [
    "TaskDAG",
    "compute_F",
    "F_of_set",
    "critical_path",
    "start_lower_bounds",
    "random_order_dag",
    "layered_dag",
    "series_parallel_dag",
    "chain_forest",
    "out_tree",
    "in_tree",
    "check_same_universe",
    "is_antichain",
    "level_set",
]
