"""Task precedence DAG used by the Section-2 algorithms.

The paper specifies precedence constraints as a DAG ``G = (S, E)`` over the
rectangle set: an edge ``(s, s')`` forces the top of ``s`` to lie at or below
the base of ``s'`` (``y_s + h_s <= y_{s'}``).

:class:`TaskDAG` is a small, dependency-free adjacency-list digraph that
provides exactly the operations the algorithms need:

* in/out neighbourhoods (the paper's ``IN(s)`` set),
* acyclicity validation and topological order,
* induced subgraphs (the ``DC`` recursion of Algorithm 1 recomputes ``F`` on
  the subgraph induced by each part),
* longest-path machinery lives in :mod:`repro.dag.critical_path`.

Node identifiers are the rectangle ids; the DAG itself never looks at
geometry.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from ..core.errors import InvalidInstanceError

__all__ = ["TaskDAG"]

Node = Hashable


class TaskDAG:
    """Directed acyclic graph over task ids.

    Parameters
    ----------
    nodes:
        Iterable of node ids (rectangle ids).
    edges:
        Iterable of ``(u, v)`` pairs meaning *u must finish before v starts*.

    Raises
    ------
    InvalidInstanceError
        If an edge endpoint is not a node, an edge is a self-loop, or the
        graph contains a directed cycle.
    """

    __slots__ = ("_succ", "_pred", "_n_edges")

    def __init__(self, nodes: Iterable[Node], edges: Iterable[tuple[Node, Node]] = ()) -> None:
        self._succ: dict[Node, set[Node]] = {n: set() for n in nodes}
        self._pred: dict[Node, set[Node]] = {n: set() for n in self._succ}
        self._n_edges = 0
        for u, v in edges:
            self.add_edge(u, v, _defer_cycle_check=True)
        self._assert_acyclic()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node, *, _defer_cycle_check: bool = False) -> None:
        """Add the precedence edge ``u -> v``.

        Unless ``_defer_cycle_check`` is set (constructor bulk-load), the
        graph re-validates acyclicity, so the DAG invariant always holds for
        external callers.
        """
        if u not in self._succ or v not in self._succ:
            raise InvalidInstanceError(f"edge ({u!r}, {v!r}) references unknown node")
        if u == v:
            raise InvalidInstanceError(f"self-loop on node {u!r}")
        if v not in self._succ[u]:
            self._succ[u].add(v)
            self._pred[v].add(u)
            self._n_edges += 1
        if not _defer_cycle_check:
            self._assert_acyclic()

    @classmethod
    def empty(cls, nodes: Iterable[Node]) -> "TaskDAG":
        """A DAG with the given nodes and no edges (plain strip packing)."""
        return cls(nodes, ())

    @classmethod
    def chain(cls, nodes: Sequence[Node]) -> "TaskDAG":
        """A single chain ``nodes[0] -> nodes[1] -> ...``."""
        return cls(nodes, list(zip(nodes, nodes[1:])))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def n_edges(self) -> int:
        """Number of precedence edges."""
        return self._n_edges

    def nodes(self) -> list[Node]:
        """All node ids (insertion order)."""
        return list(self._succ)

    def edges(self) -> list[tuple[Node, Node]]:
        """All edges as ``(u, v)`` pairs."""
        return [(u, v) for u, vs in self._succ.items() for v in vs]

    def successors(self, node: Node) -> frozenset[Node]:
        """Nodes that must start after ``node`` finishes."""
        return frozenset(self._succ[node])

    def predecessors(self, node: Node) -> frozenset[Node]:
        """The paper's ``IN(s)``: nodes with an edge into ``node``."""
        return frozenset(self._pred[node])

    def in_degree(self, node: Node) -> int:
        """Number of direct predecessors."""
        return len(self._pred[node])

    def out_degree(self, node: Node) -> int:
        """Number of direct successors."""
        return len(self._succ[node])

    def sources(self) -> list[Node]:
        """Nodes with no predecessors (``IN(s)`` empty)."""
        return [n for n in self._succ if not self._pred[n]]

    def sinks(self) -> list[Node]:
        """Nodes with no successors."""
        return [n for n in self._succ if not self._succ[n]]

    # ------------------------------------------------------------------
    # orders and reachability
    # ------------------------------------------------------------------
    def topological_order(self) -> list[Node]:
        """Kahn topological order of the nodes.

        Deterministic given insertion order: ready nodes are served FIFO.
        """
        indeg = {n: len(self._pred[n]) for n in self._succ}
        queue: deque[Node] = deque(n for n in self._succ if indeg[n] == 0)
        order: list[Node] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in self._succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != len(self._succ):
            raise InvalidInstanceError("precedence graph contains a cycle")
        return order

    def _assert_acyclic(self) -> None:
        self.topological_order()

    def reachable_from(self, node: Node) -> set[Node]:
        """All nodes reachable from ``node`` (excluding ``node`` itself)."""
        seen: set[Node] = set()
        stack = list(self._succ[node])
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self._succ[u])
        return seen

    def ancestors(self, node: Node) -> set[Node]:
        """All nodes with a path *to* ``node`` (excluding ``node``)."""
        seen: set[Node] = set()
        stack = list(self._pred[node])
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self._pred[u])
        return seen

    def has_path(self, u: Node, v: Node) -> bool:
        """Whether a directed path ``u -> ... -> v`` exists."""
        return v in self.reachable_from(u)

    def independent(self, u: Node, v: Node) -> bool:
        """Whether neither node precedes the other (Lemma 2.1's condition)."""
        return not self.has_path(u, v) and not self.has_path(v, u)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced(self, keep: Iterable[Node]) -> "TaskDAG":
        """Subgraph induced by ``keep`` (Algorithm 1 line 2 recomputes ``F``
        on exactly this graph for each recursive part)."""
        keep_set = set(keep)
        unknown = keep_set - set(self._succ)
        if unknown:
            raise InvalidInstanceError(f"induced(): unknown nodes {sorted(map(repr, unknown))}")
        sub = TaskDAG.empty([n for n in self._succ if n in keep_set])
        for u in sub._succ:
            for v in self._succ[u]:
                if v in keep_set:
                    sub._succ[u].add(v)
                    sub._pred[v].add(u)
                    sub._n_edges += 1
        return sub

    def transitive_reduction_edges(self) -> list[tuple[Node, Node]]:
        """Edges of the transitive reduction (minimal equivalent DAG).

        Used by workload generators to report the "essential" constraint
        count, and by renderers; O(V * E) — fine at study sizes.
        """
        keep: list[tuple[Node, Node]] = []
        for u in self._succ:
            direct = self._succ[u]
            # v is redundant if reachable from u through another successor.
            via: set[Node] = set()
            for w in direct:
                if w in via:
                    continue
                via |= self.reachable_from(w)
            keep.extend((u, v) for v in direct if v not in via)
        return keep

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def as_mapping(self) -> Mapping[Node, frozenset[Node]]:
        """Read-only successor mapping (for interop/tests)."""
        return {u: frozenset(vs) for u, vs in self._succ.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskDAG(n={len(self)}, m={self._n_edges})"
