"""Structural validators for precedence DAGs.

These helpers centralise the consistency checks between a rectangle set and
its DAG (same id universe), and provide the predicate form of Lemma 2.1 used
by tests: a *level set* (rectangles whose ``F`` interval straddles a given
height) must always be an antichain.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from ..core.errors import InvalidInstanceError
from .critical_path import compute_F
from .graph import TaskDAG

__all__ = ["check_same_universe", "is_antichain", "level_set"]

Node = Hashable


def check_same_universe(dag: TaskDAG, ids: Iterable[Node]) -> None:
    """Raise unless ``dag``'s nodes are exactly ``ids``."""
    id_set = set(ids)
    node_set = set(dag.nodes())
    if id_set != node_set:
        only_dag = sorted(map(repr, node_set - id_set))[:5]
        only_ids = sorted(map(repr, id_set - node_set))[:5]
        raise InvalidInstanceError(
            "DAG nodes and rectangle ids differ "
            f"(only in DAG: {only_dag}, only in rects: {only_ids})"
        )


def is_antichain(dag: TaskDAG, nodes: Iterable[Node]) -> bool:
    """Whether no node in ``nodes`` is an ancestor of another.

    Quadratic in ``len(nodes)`` with memoised reachability — adequate for
    test-time verification (Lemma 2.1: the ``S_mid`` part handed to the
    unconstrained subroutine must be an antichain).
    """
    nodes = list(nodes)
    reach: dict[Node, set[Node]] = {}
    for u in nodes:
        reach[u] = dag.reachable_from(u)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if v in reach[u] or u in reach[v]:
                return False
    return True


def level_set(dag: TaskDAG, heights: Mapping[Node, float], y: float) -> list[Node]:
    """Rectangles ``s`` with ``F(s) > y`` and ``F(s) - h_s <= y``.

    Lemma 2.1 proves any such set is an antichain; Algorithm 1 uses the level
    set at ``H/2`` as its middle band.
    """
    F = compute_F(dag, heights)
    return [s for s in dag if F[s] > y and F[s] - heights[s] <= y]
