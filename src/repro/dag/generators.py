"""Random and structured precedence DAG generators.

Workload generators for the Section-2 experiments.  All generators take a
``numpy.random.Generator`` so experiments are reproducible from a seed, and
return plain :class:`~repro.dag.graph.TaskDAG` objects over the node ids
``0..n-1`` (callers pair them with rectangles carrying the same ids).

The shapes provided mirror the structures that motivate the paper:

* ``layered``       — synthesis of task graphs with bounded parallelism,
  the generic "image pipeline" shape;
* ``series_parallel`` — recursive series/parallel composition, common in
  streaming/media workloads;
* ``random_order``  — classic G(n, p) DAG over a random topological order;
* ``chains``        — disjoint chains (the shape of the Lemma 2.4 gadget);
* ``intree``/``outtree`` — reduction/fan-out trees.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import InvalidInstanceError
from .graph import TaskDAG

__all__ = [
    "random_order_dag",
    "layered_dag",
    "series_parallel_dag",
    "chain_forest",
    "out_tree",
    "in_tree",
]


def _check_n(n: int) -> None:
    if n < 0:
        raise InvalidInstanceError(f"n must be non-negative, got {n}")


def random_order_dag(n: int, p: float, rng: np.random.Generator) -> TaskDAG:
    """G(n, p) DAG: pick a random permutation as topological order and keep
    each forward pair as an edge independently with probability ``p``.

    Edge density controls the parallelism/critical-path trade-off: ``p=0`` is
    plain strip packing, ``p=1`` a single chain.
    """
    _check_n(n)
    if not 0.0 <= p <= 1.0:
        raise InvalidInstanceError(f"p must be in [0,1], got {p}")
    order = rng.permutation(n)
    edges: list[tuple[int, int]] = []
    if n >= 2 and p > 0.0:
        # Vectorised Bernoulli draw over all forward pairs.
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.shape[0]) < p
        edges = [(int(order[i]), int(order[j])) for i, j in zip(iu[mask], ju[mask])]
    return TaskDAG(range(n), edges)


def layered_dag(
    n: int,
    n_layers: int,
    p: float,
    rng: np.random.Generator,
) -> TaskDAG:
    """Layered DAG: nodes split into ``n_layers`` layers; each node in layer
    ``i > 0`` gets at least one predecessor from layer ``i-1``, plus extra
    edges from the previous layer with probability ``p``.

    This is the canonical shape of image/stream processing pipelines: a
    stage-structured graph whose width models per-stage data parallelism.
    """
    _check_n(n)
    if n_layers <= 0:
        raise InvalidInstanceError(f"n_layers must be positive, got {n_layers}")
    n_layers = min(n_layers, n) if n else n_layers
    # Random composition of n into n_layers non-empty parts.
    sizes = np.full(n_layers, 1, dtype=int)
    if n > n_layers:
        extra = rng.multinomial(n - n_layers, np.full(n_layers, 1.0 / n_layers))
        sizes = sizes + extra
    layers: list[list[int]] = []
    nxt = 0
    for sz in sizes[: n if n < n_layers else n_layers]:
        layers.append(list(range(nxt, nxt + int(sz))))
        nxt += int(sz)
    edges: list[tuple[int, int]] = []
    for prev, cur in zip(layers, layers[1:]):
        for v in cur:
            anchor = int(rng.integers(len(prev)))
            edges.append((prev[anchor], v))
            for u in prev:
                if u != prev[anchor] and rng.random() < p:
                    edges.append((u, v))
    return TaskDAG(range(n), edges)


def series_parallel_dag(n: int, rng: np.random.Generator, series_bias: float = 0.5) -> TaskDAG:
    """Random series-parallel DAG on ``n`` nodes.

    Built by recursive splitting: a block of nodes is either composed in
    series (every node of the left part precedes every *source* of the right
    part — realised through a single bridge edge set to keep the graph
    sparse) or in parallel (no cross edges).  ``series_bias`` is the
    probability of a series split.
    """
    _check_n(n)
    edges: list[tuple[int, int]] = []

    def build(lo: int, hi: int) -> tuple[list[int], list[int]]:
        """Return (sources, sinks) of the block [lo, hi)."""
        if hi - lo == 1:
            return [lo], [lo]
        mid = int(rng.integers(lo + 1, hi))
        left_src, left_snk = build(lo, mid)
        right_src, right_snk = build(mid, hi)
        if rng.random() < series_bias:
            for u in left_snk:
                for v in right_src:
                    edges.append((u, v))
            return left_src, right_snk
        return left_src + right_src, left_snk + right_snk

    if n:
        build(0, n)
    return TaskDAG(range(n), edges)


def chain_forest(chain_lengths: Sequence[int]) -> TaskDAG:
    """Disjoint chains with the given lengths; node ids are assigned
    consecutively chain by chain.  ``chain_lengths=[3, 2]`` yields
    ``0->1->2`` and ``3->4``."""
    if any(length <= 0 for length in chain_lengths):
        raise InvalidInstanceError("chain lengths must be positive")
    n = int(sum(chain_lengths))
    edges: list[tuple[int, int]] = []
    nxt = 0
    for length in chain_lengths:
        ids = list(range(nxt, nxt + length))
        edges.extend(zip(ids, ids[1:]))
        nxt += length
    return TaskDAG(range(n), edges)


def out_tree(n: int, branching: int, rng: np.random.Generator | None = None) -> TaskDAG:
    """Fan-out tree rooted at node 0: node ``i > 0`` has parent
    ``(i-1) // branching`` — a scatter/distribute dependency pattern."""
    _check_n(n)
    if branching <= 0:
        raise InvalidInstanceError(f"branching must be positive, got {branching}")
    edges = [((i - 1) // branching, i) for i in range(1, n)]
    return TaskDAG(range(n), edges)


def in_tree(n: int, branching: int, rng: np.random.Generator | None = None) -> TaskDAG:
    """Reduction tree: the reverse of :func:`out_tree`; node 0 is the final
    sink (gather/reduce dependency pattern)."""
    _check_n(n)
    if branching <= 0:
        raise InvalidInstanceError(f"branching must be positive, got {branching}")
    edges = [(i, (i - 1) // branching) for i in range(1, n)]
    return TaskDAG(range(n), edges)
