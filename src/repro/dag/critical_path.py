"""The recursive lower-bound function ``F`` of Section 2.

For a rectangle ``s`` with heights ``h`` and precedence DAG ``G=(S,E)`` the
paper defines::

    F(s) = h_s                                   if IN(s) is empty
    F(s) = h_s + max_{s' in IN(s)} F(s')         otherwise

``F(s)`` is the earliest possible height of the *top* edge of ``s`` in any
valid placement (the length of the longest weighted path ending at ``s``),
and ``F(S') = max_{s in S'} F(s)`` is the critical-path lower bound on
``OPT(S, E)``.

Algorithm 1 (``DC``) recomputes ``F`` on induced subgraphs at every level of
its recursion, so this module exposes both a full computation and the
path-extraction helper used by tests of Lemma 2.2 ("a tight chain from a
source to a rectangle achieving ``F(S)`` always exists").
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..core.errors import InvalidInstanceError
from .graph import TaskDAG

__all__ = ["compute_F", "F_of_set", "critical_path", "start_lower_bounds"]

Node = Hashable


def compute_F(dag: TaskDAG, heights: Mapping[Node, float]) -> dict[Node, float]:
    """Compute ``F(s)`` for every node of ``dag``.

    Parameters
    ----------
    dag:
        Precedence DAG.
    heights:
        ``h_s`` for every node of the DAG.

    Returns
    -------
    dict
        ``F(s)`` per node, computed in one topological pass (O(V+E)).
    """
    missing = [n for n in dag if n not in heights]
    if missing:
        raise InvalidInstanceError(f"heights missing for nodes {missing[:5]!r}")
    F: dict[Node, float] = {}
    for node in dag.topological_order():
        preds = dag.predecessors(node)
        base = max((F[p] for p in preds), default=0.0)
        F[node] = heights[node] + base
    return F


def F_of_set(dag: TaskDAG, heights: Mapping[Node, float]) -> float:
    """``F(S) = max_s F(s)`` — the critical-path lower bound on OPT.

    Returns 0 for an empty DAG.
    """
    F = compute_F(dag, heights)
    return max(F.values(), default=0.0)


def start_lower_bounds(dag: TaskDAG, heights: Mapping[Node, float]) -> dict[Node, float]:
    """``F(s) - h_s`` per node: the earliest height the *base* of ``s`` can
    take in any valid placement.  Algorithm 1 classifies rectangles into
    bottom/middle/top parts by comparing these values with ``H/2``."""
    F = compute_F(dag, heights)
    return {n: F[n] - heights[n] for n in F}


def critical_path(dag: TaskDAG, heights: Mapping[Node, float]) -> list[Node]:
    """One maximum-weight path realising ``F(S)``.

    The path starts at a source (``IN`` empty) and ends at a node whose
    ``F`` value equals ``F(S)``; the sum of heights along it is exactly
    ``F(S)``.  This is the "tight dependency path" of Lemma 2.2.
    """
    if len(dag) == 0:
        return []
    F = compute_F(dag, heights)
    end = max(dag, key=lambda n: F[n])
    path = [end]
    cur = end
    while True:
        preds = dag.predecessors(cur)
        if not preds:
            break
        best = max(preds, key=lambda p: F[p])
        # The chain is tight: F(cur) = h_cur + F(best).
        path.append(best)
        cur = best
    path.reverse()
    return path
