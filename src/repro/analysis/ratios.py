"""Ratio statistics used by every benchmark harness.

An *approximation ratio sample* compares an achieved height against a
reference (a lower bound or a true optimum).  The helpers here aggregate
samples the way the paper's statements are phrased: worst case for absolute
guarantees, mean/geometric-mean for typical behaviour, and a regression
helper (`log_slope`) for the "grows like log n" shape checks of
experiment E2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["RatioSample", "summarize", "geometric_mean", "log_slope", "samples_from_reports"]


@dataclass(frozen=True)
class RatioSample:
    """One measurement: achieved height vs. reference height."""

    achieved: float
    reference: float
    label: str = ""

    @property
    def ratio(self) -> float:
        if self.reference <= 0.0:
            raise ZeroDivisionError(f"non-positive reference in sample {self.label!r}")
        return self.achieved / self.reference


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (0 for empty input is refused: raises ValueError)."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=float)))))


def summarize(samples: Sequence[RatioSample]) -> dict[str, float]:
    """Aggregate ratios: count, min/mean/geo-mean/max."""
    ratios = [s.ratio for s in samples]
    if not ratios:
        return {"count": 0.0}
    return {
        "count": float(len(ratios)),
        "min": float(min(ratios)),
        "mean": float(np.mean(ratios)),
        "gmean": geometric_mean(ratios),
        "max": float(max(ratios)),
    }


def samples_from_reports(reports) -> list[RatioSample]:
    """Turn engine :class:`~repro.engine.report.SolveReport` objects into
    ratio samples (reports without a usable lower bound are skipped)."""
    return [
        RatioSample(achieved=r.height, reference=r.lower_bound, label=r.label or r.algorithm)
        for r in reports
        if r.ratio is not None
    ]


def log_slope(ns: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of ``values`` against ``log2(ns)``.

    Experiment E2 checks that the optimal height of the Lemma 2.4 family
    grows linearly in ``log n`` (slope ~ 1/2 per doubling-pair): a slope
    meaningfully above 0 confirms the Omega(log n) gap shape.
    """
    if len(ns) != len(values) or len(ns) < 2:
        raise ValueError("need two aligned sequences of length >= 2")
    x = np.log2(np.asarray(ns, dtype=float))
    y = np.asarray(values, dtype=float)
    slope, _intercept = np.polyfit(x, y, 1)
    return float(slope)
