"""Plain-text table rendering for benchmark output.

Benchmarks print the same row/series structure the paper's analysis implies
("who wins, by what factor, where the growth is logarithmic"); this module
keeps the formatting in one place so every harness emits uniform, grep-able
tables.  :func:`reports_table` renders a batch of engine
:class:`~repro.engine.report.SolveReport` objects in one canonical layout,
so harnesses stop re-deriving heights/bounds/ratios per call site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.report import SolveReport

__all__ = ["Table", "format_value", "reports_table"]


def format_value(v: object, precision: int = 4) -> str:
    """Uniform cell formatting: floats to ``precision`` significant digits."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        return f"{v:.{precision}g}"
    return str(v)


class Table:
    """A simple monospaced table builder.

    >>> t = Table(["n", "ratio"], title="demo")
    >>> t.add_row([4, 1.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [format_value(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells for {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows), 1)
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "  "
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append(sep.join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep.join("-" * w for w in widths))
        for r in self.rows:
            lines.append(sep.join(c.rjust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())


REPORT_COLUMNS = ("label", "algorithm", "n", "height", "lower_bound", "ratio", "time_s", "status")


def reports_table(
    reports: Sequence["SolveReport"], title: str = "", *, label_header: str = "label"
) -> Table:
    """One row per :class:`~repro.engine.report.SolveReport`.

    The canonical batch/portfolio layout: label, algorithm, n, height,
    lower bound, ratio, wall-time, validation status.  Failed runs render
    their height/ratio as ``-`` and carry the error in the status cell.
    """
    columns = [label_header, *REPORT_COLUMNS[1:]]
    table = Table(columns, title=title)
    for r in reports:
        failed = r.error is not None and r.placement is None
        if failed:
            status = f"error: {r.error.splitlines()[0][:40]}"
        elif r.valid is None:
            status = "unchecked"
        elif r.valid:
            status = "valid"
        else:
            status = f"INVALID: {(r.error or '').splitlines()[0][:40]}"
        table.add_row(
            [
                r.label or r.algorithm,
                r.algorithm,
                r.n,
                "-" if failed else r.height,
                "-" if r.lower_bound is None else r.lower_bound,
                "-" if r.ratio is None else r.ratio,
                r.wall_time,
                status,
            ]
        )
    return table
