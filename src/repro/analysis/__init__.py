"""Measurement and reporting helpers shared by benchmarks and examples."""

from .ratios import RatioSample, geometric_mean, log_slope, samples_from_reports, summarize
from .render import render_placement
from .report import Table, format_value, reports_table

__all__ = [
    "RatioSample",
    "summarize",
    "geometric_mean",
    "log_slope",
    "samples_from_reports",
    "Table",
    "format_value",
    "reports_table",
    "render_placement",
]
