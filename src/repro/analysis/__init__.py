"""Measurement and reporting helpers shared by benchmarks and examples."""

from .ratios import RatioSample, geometric_mean, log_slope, summarize
from .render import render_placement
from .report import Table, format_value

__all__ = [
    "RatioSample",
    "summarize",
    "geometric_mean",
    "log_slope",
    "Table",
    "format_value",
    "render_placement",
]
