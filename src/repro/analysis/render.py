"""ASCII rendering of placements — the examples' visual output.

Draws a placement on a character grid (strip width across, height up the
page, origin at the bottom-left).  Rectangles are filled with a letter per
id; boundaries are preserved well enough at typical terminal sizes to read
shelf structure, DC bands and APTAS columns at a glance.
"""

from __future__ import annotations

from typing import Hashable

from ..core.placement import Placement

__all__ = ["render_placement"]

_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def render_placement(
    placement: Placement,
    *,
    width_chars: int = 64,
    max_rows: int = 40,
) -> str:
    """Render a placement as ASCII art (top of strip printed first).

    Cells covered by a rectangle show its glyph (ids are mapped to glyphs in
    placement order, cycling); empty cells show ``.``.
    """
    if len(placement) == 0:
        return "(empty placement)"
    H = placement.height
    # Aim for roughly square-looking cells at a 2:1 character aspect ratio,
    # clamped to [4, max_rows] rows.
    rows = max(4, min(max_rows, int(round(H * width_chars / 2))))
    grid = [["." for _ in range(width_chars)] for _ in range(rows)]
    glyph_of: dict[Hashable, str] = {}
    for k, (rid, _) in enumerate(placement.items()):
        glyph_of[rid] = _GLYPHS[k % len(_GLYPHS)]
    cell_h = H / rows
    cell_w = 1.0 / width_chars
    for rid, pr in placement.items():
        r0 = int(pr.y / cell_h)
        r1 = max(r0 + 1, min(rows, int(round(pr.y2 / cell_h))))
        c0 = int(pr.x / cell_w)
        c1 = max(c0 + 1, min(width_chars, int(round(pr.x2 / cell_w))))
        for rr in range(max(0, r0), min(rows, r1)):
            for cc in range(max(0, c0), c1):
                grid[rr][cc] = glyph_of[rid]
    lines = ["".join(row) for row in reversed(grid)]
    header = f"height = {H:.4g}, n = {len(placement)}"
    return "\n".join([header] + lines)
