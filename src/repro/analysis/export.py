"""CSV/JSON export for experiment tables.

Benchmarks persist human-readable tables under ``benchmarks/results/``;
this module adds machine-readable exports so downstream tooling (plots,
regression tracking) can consume the same data without re-parsing the
monospace rendering.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from .report import Table

__all__ = ["table_to_csv", "table_to_records", "table_to_json"]


def table_to_records(table: Table) -> list[dict[str, str]]:
    """Rows as a list of column->cell dicts (cells are formatted strings)."""
    return [dict(zip(table.columns, row)) for row in table.rows]


def table_to_csv(table: Table) -> str:
    """Render a table as CSV text (header row first)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(table.columns)
    writer.writerows(table.rows)
    return buf.getvalue()


def table_to_json(table: Table, **json_kwargs: Any) -> str:
    """Render a table as a JSON document ``{"title":..., "rows": [...]}.``"""
    return json.dumps(
        {"title": table.title, "columns": table.columns, "rows": table_to_records(table)},
        **json_kwargs,
    )
