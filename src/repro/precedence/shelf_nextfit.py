"""Algorithm ``F`` of Section 2.2: shelf Next-Fit for uniform heights.

All rectangles have height 1 (the library normalises any common height).
The algorithm keeps exactly one *open* shelf at the top of the packing; all
shelves below are *closed*.  A rectangle is **available** once all its
predecessors sit on closed shelves.  Available rectangles wait in a FIFO
queue and are placed left-to-right on the open shelf until the queue head
does not fit (width) or the queue is empty; then the shelf closes and a new
one opens, repopulating the queue.

A shelf closed with a non-empty queue is a *width-close*; a shelf closed on
an empty queue is a **skip** (Lemma 2.5: #skips <= OPT).  Theorem 2.6's
red/green accounting gives the absolute 3-approximation; the run records
both statistics so experiments E3 can verify ``r <= 2*AREA`` and
``g <= OPT`` directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..core import tol
from ..core.errors import InvalidInstanceError
from ..core.instance import PrecedenceInstance
from ..core.placement import Placement

__all__ = ["ShelfRun", "shelf_next_fit"]

Node = Hashable


@dataclass
class ShelfRecord:
    """Bookkeeping for one shelf: which ids it holds and why it closed."""

    index: int
    ids: tuple[Node, ...]
    used_width: float
    closed_by_skip: bool


@dataclass
class ShelfRun:
    """Outcome of Algorithm F: placement, shelf trace and skip count."""

    placement: Placement
    shelf_height: float
    shelves: list[ShelfRecord] = field(default_factory=list)

    @property
    def height(self) -> float:
        """Total packing height = #shelves * shelf height."""
        return len(self.shelves) * self.shelf_height

    @property
    def n_skips(self) -> int:
        """Number of shelves closed because the ready queue was empty."""
        return sum(1 for s in self.shelves if s.closed_by_skip)


def shelf_next_fit(instance: PrecedenceInstance) -> ShelfRun:
    """Run Algorithm F on a uniform-height precedence instance.

    Raises
    ------
    InvalidInstanceError
        If rectangle heights are not all equal (the Section 2.2 setting).
    """
    rects = instance.by_id()
    heights = {r.height for r in instance.rects}
    if len(heights) > 1:
        raise InvalidInstanceError(
            f"shelf_next_fit requires uniform heights, got {len(heights)} distinct values"
        )
    h = heights.pop() if heights else 1.0

    dag = instance.dag
    placement = Placement()
    run = ShelfRun(placement=placement, shelf_height=h)

    placed_closed: set[Node] = set()   # ids on *closed* shelves
    queued: set[Node] = set()
    remaining: set[Node] = set(rects)
    queue: deque[Node] = deque()

    def repopulate() -> None:
        """Add to the queue every unplaced rectangle whose predecessors are
        all on closed shelves.  Deterministic order (sorted by id) keeps runs
        reproducible; the paper leaves the queue order arbitrary."""
        fresh = [
            s
            for s in remaining
            if s not in queued and all(p in placed_closed for p in dag.predecessors(s))
        ]
        for s in sorted(fresh, key=str):
            queue.append(s)
            queued.add(s)

    shelf_index = 0
    repopulate()
    while remaining:
        # Open shelf `shelf_index`, fill from the queue head.
        y = shelf_index * h
        used = 0.0
        ids: list[Node] = []
        while queue:
            head = queue[0]
            w = rects[head].width
            if tol.leq(used + w, 1.0):
                queue.popleft()
                queued.discard(head)
                placement.place(rects[head], tol.clamp(used, 0.0, 1.0 - w), y)
                used += w
                ids.append(head)
                remaining.discard(head)
            else:
                break
        closed_by_skip = not queue  # queue empty at close time => skip
        run.shelves.append(
            ShelfRecord(index=shelf_index, ids=tuple(ids), used_width=used, closed_by_skip=closed_by_skip)
        )
        # Closing the shelf makes its rectangles "closed-placed".
        placed_closed.update(ids)
        shelf_index += 1
        repopulate()
        if not queue and remaining:
            # No rectangle became available even after closing: only possible
            # if the DAG is inconsistent (cannot happen for a valid DAG).
            raise AssertionError("ready queue empty with rectangles remaining on a valid DAG")
    return run
