"""The slide-down argument of Section 2.2: any uniform-height packing can be
converted to a *shelf* packing without increasing the total height.

With common height ``h``, shelf ``i`` is the band ``[(i-1)h, ih)``.  A
placement is a shelf solution when every rectangle lies inside one shelf.
The conversion repeatedly picks the *lowest-based* rectangle that spans two
shelves and slides it down to the floor of the lower shelf it spans.  The
paper's argument shows no rectangle can obstruct the minimal one:

* an obstructor lying entirely inside the lower shelf would already overlap
  the spanning rectangle in the original placement (their y-ranges meet);
* an obstructor whose top lies strictly inside the lower shelf spans two
  shelves itself with a smaller base — contradicting minimality.

The implementation performs the slides literally, validates non-overlap
after every step in ``paranoid`` mode, and raises if the argument's
invariant ever fails (it cannot, on valid input).
"""

from __future__ import annotations

import math

from ..core import tol
from ..core.errors import InvalidInstanceError, InvalidPlacementError
from ..core.instance import PrecedenceInstance, StripPackingInstance
from ..core.placement import PlacedRect, Placement, find_overlap

__all__ = ["to_shelf_solution", "is_shelf_solution", "shelf_index"]


def _common_height(instance: StripPackingInstance) -> float:
    heights = {r.height for r in instance.rects}
    if len(heights) != 1:
        raise InvalidInstanceError(
            f"shelf conversion requires uniform heights, got {len(heights)} distinct"
        )
    return heights.pop()


def shelf_index(y: float, h: float, atol: float = tol.ATOL) -> int | None:
    """Shelf number (1-based) containing a rectangle based at ``y``; ``None``
    when the rectangle spans two shelves."""
    q = y / h
    nearest = round(q)
    if abs(q - nearest) * h <= atol:
        return int(nearest) + 1
    return None


def is_shelf_solution(placement: Placement, h: float, atol: float = tol.ATOL) -> bool:
    """Whether every rectangle base is aligned to a shelf boundary."""
    return all(shelf_index(pr.y, h, atol) is not None for pr in placement)


def to_shelf_solution(
    instance: StripPackingInstance,
    placement: Placement,
    *,
    paranoid: bool = False,
) -> Placement:
    """Convert a valid uniform-height placement into a shelf solution of the
    same (or smaller) height.

    Parameters
    ----------
    instance:
        The instance (only used for the common height and for id checking).
    placement:
        A valid placement (caller responsibility; validated in tests).
    paranoid:
        Re-check non-overlap after every individual slide (tests use this).

    Returns
    -------
    Placement
        A placement where each rectangle lies within one shelf.  Height never
        increases; precedence constraints are preserved because every move is
        downward onto a boundary at or above all blocking rectangles.
    """
    h = _common_height(instance)
    current: dict = {rid: pr for rid, pr in placement.items()}

    def spanning() -> list:
        return [rid for rid, pr in current.items() if shelf_index(pr.y, h) is None]

    guard = 0
    max_iter = 4 * len(current) + 16
    while True:
        span = spanning()
        if not span:
            break
        guard += 1
        if guard > max_iter:
            raise InvalidPlacementError("slide-down failed to terminate; input invalid?")
        # Lowest-based spanning rectangle first (the paper's choice).
        rid = min(span, key=lambda s: (current[s].y, str(s)))
        pr = current[rid]
        # Lower shelf floor: largest multiple of h strictly below pr.y.
        floor = math.floor(pr.y / h + tol.ATOL) * h
        # Check nothing obstructs the slide within (floor, pr.y).
        for other_id, opr in current.items():
            if other_id == rid:
                continue
            x_overlap = tol.lt(pr.x, opr.x2) and tol.lt(opr.x, pr.x2)
            if not x_overlap:
                continue
            if tol.gt(opr.y2, floor) and tol.lt(opr.y, pr.y + pr.rect.height):
                # By the paper's argument this is impossible for the minimal
                # spanning rectangle of a valid placement.
                raise InvalidPlacementError(
                    f"slide-down obstructed: {other_id!r} blocks {rid!r} "
                    "(input placement is not valid)"
                )
        current[rid] = PlacedRect(pr.rect, pr.x, floor)
        if paranoid:
            bad = find_overlap(current.values())
            if bad is not None:
                raise InvalidPlacementError(
                    f"slide created an overlap between {bad[0].rect.rid!r} and {bad[1].rect.rid!r}"
                )
    return Placement(current)
