"""Precedence-constrained bin packing (the Section 2.2 reduction target).

Tasks with sizes in ``(0, 1]`` and a partial order must be assigned to a
sequence of unit-capacity bins so that ``a ≺ b`` implies ``bin(a) <
bin(b)`` (strictly earlier).  Garey, Graham, Johnson and Yao studied this as
a special case of resource-constrained scheduling and gave an asymptotic
2.7-approximation; the paper imports that result for uniform-height strip
packing via the shelf equivalence, and contributes the absolute
3-approximation (:mod:`repro.precedence.shelf_nextfit`).

This module provides:

* the two directions of the strip <-> bin equivalence
  (:func:`strip_to_bin_instance`, :func:`bins_to_placement`);
* ``precedence_next_fit`` — the bin-packing twin of Algorithm F;
* ``precedence_first_fit_decreasing`` — the Garey-et-al.-style *level*
  algorithm: close bins one at a time, filling each greedily
  (first-fit-decreasing over the currently available tasks), which is the
  natural 2.7-regime heuristic measured in experiment E5;
* a longest-chain lower bound on the number of bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from ..core import tol
from ..core.errors import InvalidInstanceError
from ..core.instance import PrecedenceInstance
from ..core.placement import Placement
from ..core.rectangle import Rect
from ..dag.graph import TaskDAG

__all__ = [
    "BinPackingInstance",
    "BinAssignment",
    "strip_to_bin_instance",
    "bins_to_placement",
    "precedence_next_fit",
    "precedence_first_fit_decreasing",
    "chain_lower_bound",
    "size_lower_bound",
]

Node = Hashable


@dataclass(frozen=True)
class BinPackingInstance:
    """Sizes in ``(0, 1]`` plus a precedence DAG over the same ids."""

    sizes: Mapping[Node, float]
    dag: TaskDAG

    def __post_init__(self) -> None:
        for tid, sz in self.sizes.items():
            if not 0.0 < sz <= 1.0 + tol.ATOL:
                raise InvalidInstanceError(f"task {tid!r}: size must be in (0,1], got {sz!r}")
        if set(self.sizes) != set(self.dag.nodes()):
            raise InvalidInstanceError("sizes and DAG must cover the same task ids")

    def __len__(self) -> int:
        return len(self.sizes)


@dataclass
class BinAssignment:
    """bins[i] = list of task ids in bin ``i`` (0-based sequence order)."""

    bins: list[list[Node]]

    @property
    def n_bins(self) -> int:
        return len(self.bins)

    def bin_of(self) -> dict[Node, int]:
        """Mapping task id -> bin index."""
        return {tid: i for i, tasks in enumerate(self.bins) for tid in tasks}

    def validate(self, instance: BinPackingInstance) -> None:
        """Raise unless the assignment is feasible: all tasks assigned once,
        capacities respected, precedence strictly increasing."""
        where = self.bin_of()
        missing = set(instance.sizes) - set(where)
        if missing:
            raise InvalidInstanceError(f"unassigned tasks: {sorted(map(str, missing))[:5]}")
        counts: dict[Node, int] = {}
        for tasks in self.bins:
            for tid in tasks:
                counts[tid] = counts.get(tid, 0) + 1
        dup = [t for t, c in counts.items() if c > 1]
        if dup:
            raise InvalidInstanceError(f"tasks assigned twice: {dup[:5]}")
        for i, tasks in enumerate(self.bins):
            load = sum(instance.sizes[t] for t in tasks)
            if tol.gt(load, 1.0):
                raise InvalidInstanceError(f"bin {i} overfull: load {load:g}")
        for u, v in instance.dag.edges():
            if where[u] >= where[v]:
                raise InvalidInstanceError(
                    f"precedence violated: {u!r} in bin {where[u]} !< {v!r} in bin {where[v]}"
                )


# ----------------------------------------------------------------------
# the strip <-> bin equivalence of Section 2.2
# ----------------------------------------------------------------------

def strip_to_bin_instance(instance: PrecedenceInstance) -> BinPackingInstance:
    """Uniform-height strip instance -> bin instance (width becomes size)."""
    heights = {r.height for r in instance.rects}
    if len(heights) > 1:
        raise InvalidInstanceError("strip->bin reduction requires uniform heights")
    return BinPackingInstance(
        sizes={r.rid: r.width for r in instance.rects}, dag=instance.dag
    )


def bins_to_placement(
    instance: PrecedenceInstance, assignment: BinAssignment
) -> Placement:
    """Bin assignment -> shelf placement (bin ``i`` becomes shelf ``i``)."""
    by_id = instance.by_id()
    h = instance.rects[0].height if instance.rects else 1.0
    placement = Placement()
    for i, tasks in enumerate(assignment.bins):
        x = 0.0
        for tid in tasks:
            r = by_id[tid]
            placement.place(r, tol.clamp(x, 0.0, 1.0 - r.width), i * h)
            x += r.width
    return placement


# ----------------------------------------------------------------------
# algorithms
# ----------------------------------------------------------------------

def precedence_next_fit(instance: BinPackingInstance) -> BinAssignment:
    """Next-Fit with precedence: FIFO available queue, one open bin; close on
    first misfit or queue exhaustion.  The bin-packing twin of Algorithm F
    (3-approximate by Theorem 2.6)."""
    return _run_level_algorithm(instance, order_key=None)


def precedence_first_fit_decreasing(instance: BinPackingInstance) -> BinAssignment:
    """Level algorithm with First-Fit-Decreasing inside each bin.

    While tasks remain: compute the set of available tasks (all predecessors
    in strictly earlier bins), then fill the current bin by scanning the
    available tasks in non-increasing size order, adding each that still
    fits.  This dominates next-fit per bin and is the natural heuristic in
    the Garey-Graham-Johnson-Yao asymptotic regime.
    """
    return _run_level_algorithm(instance, order_key=lambda tid, sz: (-sz, str(tid)))


def _run_level_algorithm(instance: BinPackingInstance, order_key) -> BinAssignment:
    dag = instance.dag
    sizes = instance.sizes
    closed: set[Node] = set()
    remaining = set(sizes)
    bins: list[list[Node]] = []
    # FIFO arrival order for the next-fit variant.
    fifo: list[Node] = []
    in_fifo: set[Node] = set()

    while remaining:
        available = [
            t for t in remaining if all(p in closed for p in dag.predecessors(t))
        ]
        if not available:
            raise AssertionError("no available task on a valid DAG")
        if order_key is None:
            for t in sorted(available, key=str):
                if t not in in_fifo:
                    fifo.append(t)
                    in_fifo.add(t)
            candidates = [t for t in fifo if t in remaining]
        else:
            candidates = sorted(available, key=lambda t: order_key(t, sizes[t]))
        load = 0.0
        chosen: list[Node] = []
        for t in candidates:
            if order_key is None:
                # Next-Fit: stop at the first task that does not fit.
                if tol.leq(load + sizes[t], 1.0):
                    chosen.append(t)
                    load += sizes[t]
                else:
                    break
            else:
                if tol.leq(load + sizes[t], 1.0):
                    chosen.append(t)
                    load += sizes[t]
        bins.append(chosen)
        for t in chosen:
            remaining.discard(t)
            in_fifo.discard(t)
        fifo = [t for t in fifo if t in remaining]
        closed.update(chosen)
    return BinAssignment(bins=bins)


# ----------------------------------------------------------------------
# lower bounds
# ----------------------------------------------------------------------

def chain_lower_bound(instance: BinPackingInstance) -> int:
    """Longest chain in the DAG: each element needs its own, later bin."""
    depth: dict[Node, int] = {}
    for t in instance.dag.topological_order():
        preds = instance.dag.predecessors(t)
        depth[t] = 1 + max((depth[p] for p in preds), default=0)
    return max(depth.values(), default=0)


def size_lower_bound(instance: BinPackingInstance) -> int:
    """Ceiling of the total size: unit bins must hold it all."""
    import math

    total = sum(instance.sizes.values())
    return int(math.ceil(total - tol.ATOL))
