"""Algorithm 1 of the paper: ``DC``, the divide-and-conquer
O(log n)-approximation for precedence-constrained strip packing.

Given an instance ``(S, E)`` the algorithm recomputes the critical-path
function ``F`` on the current sub-DAG, sets ``H = F(S)``, and splits::

    S_bot = { s : F(s) <= H/2 }                       (recurse below)
    S_mid = { s : F(s) >  H/2  and  F(s) - h_s <= H/2 }   (antichain; pack with A)
    S_top = { s : F(s) - h_s > H/2 }                  (recurse above)

``S_mid`` straddles the horizontal line ``H/2`` in the "infinitely wide
strip" interpretation of ``F``, so by Lemma 2.1 it contains no dependent
pair and the unconstrained subroutine ``A`` may pack it.  Lemma 2.2
guarantees ``S_mid`` is non-empty, so the recursion terminates.  Theorem 2.3
proves::

    DC(S) <= log2(n + 1) * F(S) + 2 * AREA(S) <= (2 + log2(n + 1)) * OPT(S, E)

The implementation mirrors the pseudo-code line by line and additionally
records the recursion tree (band structure) for introspection/rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..core import tol
from ..core.instance import PrecedenceInstance
from ..core.placement import Placement
from ..dag.critical_path import compute_F
from ..dag.graph import TaskDAG
from ..packing.base import Packer
from ..packing.nfdh import nfdh

__all__ = ["DCResult", "DCBand", "dc_pack"]

Node = Hashable


@dataclass(frozen=True)
class DCBand:
    """One ``A(S_mid)`` invocation: which ids were packed where.

    Recorded in recursion order (bottom-up in the strip), giving the full
    horizontal band decomposition the analysis of Theorem 2.3 reasons about.
    """

    y: float
    extent: float
    ids: tuple[Node, ...]
    depth: int


@dataclass
class DCResult:
    """Placement plus the recursion-band trace of a ``DC`` run."""

    placement: Placement
    height: float
    bands: list[DCBand] = field(default_factory=list)

    @property
    def max_depth(self) -> int:
        """Deepest recursion level that produced a band."""
        return max((b.depth for b in self.bands), default=0)


def dc_pack(
    instance: PrecedenceInstance,
    subroutine: Packer = nfdh,
) -> DCResult:
    """Run Algorithm 1 on ``instance`` using ``subroutine`` as ``A``.

    Parameters
    ----------
    instance:
        Precedence-constrained strip packing instance.
    subroutine:
        Unconstrained packer honouring the subroutine-A convention
        (:mod:`repro.packing.base`); default NFDH.

    Returns
    -------
    DCResult
        Valid placement (checked by the caller/tests via
        :func:`repro.core.placement.validate_placement`) whose height obeys
        Theorem 2.3.
    """
    by_id = instance.by_id()
    heights = instance.heights()
    result = DCResult(placement=Placement(), height=0.0)

    def recurse(y: float, ids: list[Node], dag: TaskDAG, depth: int) -> float:
        """Line-by-line Algorithm 1; returns the extent used above ``y``."""
        # 1: if S is empty, return 0.
        if not ids:
            return 0.0
        # 2: recalculate F on the induced sub-DAG.
        F = compute_F(dag, heights)
        # 3: H = F(S).
        H = max(F[s] for s in ids)
        # 4-6: three-way split around H/2.  Comparisons are tolerance-aware
        # and each rectangle is classified exactly once: exact-half ties
        # (common in structured instances, e.g. power-of-two chains) must not
        # land a rectangle in two parts or drop the straddling rectangle from
        # S_mid, which would break Lemma 2.2's progress guarantee.
        half = H / 2.0
        s_bot, s_mid, s_top = [], [], []
        for s in ids:
            if tol.gt(F[s] - heights[s], half):
                s_top.append(s)
            elif tol.leq(F[s], half):
                s_bot.append(s)
            else:
                s_mid.append(s)
        # Lemma 2.2: S_mid is never empty, hence both recursions shrink.
        assert s_mid, "Lemma 2.2 violated: empty S_mid"
        cur = y
        # 7-8: place S_bot below.
        cur += recurse(cur, s_bot, dag.induced(s_bot), depth + 1)
        # 9-10: pack the antichain S_mid with A starting at cur.
        pack = subroutine([by_id[s] for s in s_mid], cur)
        result.placement.merge(pack.placement)
        result.bands.append(DCBand(y=cur, extent=pack.extent, ids=tuple(s_mid), depth=depth))
        cur += pack.extent
        # 11-12: place S_top above.
        cur += recurse(cur, s_top, dag.induced(s_top), depth + 1)
        return cur - y

    total = recurse(0.0, list(by_id), instance.dag, depth=0)
    result.height = total
    return result
