"""The red/green shelf accounting from the proof of Theorem 2.6.

Sweep the shelves of an Algorithm-F run bottom to top: if the rectangles on
the current shelf and the next together cover area >= 1, colour both red and
jump two shelves; otherwise colour the current shelf green and advance one.
The proof shows

* red shelves have average density >= 1/2, so ``r <= 2 * AREA(S)``;
* every green shelf is a skip shelf, so ``g <= #skips <= OPT`` (Lemma 2.5);
* hence ``r + g <= 3 * OPT``.

Experiment E3 recomputes this colouring for every run and asserts the two
inequalities on the measured quantities — reproducing the proof's
accounting, not just the end-to-end ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import tol
from .shelf_nextfit import ShelfRun

__all__ = ["ShelfColoring", "color_shelves"]


@dataclass(frozen=True)
class ShelfColoring:
    """Outcome of the red/green sweep."""

    colors: tuple[str, ...]  # 'red' / 'green' per shelf, bottom-up

    @property
    def n_red(self) -> int:
        return sum(1 for c in self.colors if c == "red")

    @property
    def n_green(self) -> int:
        return sum(1 for c in self.colors if c == "green")


def color_shelves(run: ShelfRun) -> ShelfColoring:
    """Apply the Theorem 2.6 colouring to a shelf run.

    Shelf areas use the true rectangle areas (width * common height divided
    by the shelf height h gives width sums; with h normalised the proof's
    "area >= 1" test is a width-sum >= 1 test per shelf pair).
    """
    # Widths sum per shelf: with uniform height h, area of shelf i in units
    # of full shelves is used_width (strip width 1, shelf height h).
    loads = [rec.used_width for rec in run.shelves]
    colors: list[str] = ["?"] * len(loads)
    i = 0
    while i < len(loads):
        if i + 1 < len(loads) and tol.geq(loads[i] + loads[i + 1], 1.0):
            colors[i] = colors[i + 1] = "red"
            i += 2
        else:
            colors[i] = "green"
            i += 1
    return ShelfColoring(colors=tuple(colors))


def verify_accounting(run: ShelfRun, area: float, opt_lower: float) -> dict[str, float]:
    """Check the two proof inequalities on a run; returns the measured
    quantities (raises AssertionError on violation).

    ``area`` is AREA(S) in shelf-height units (sum of widths * h / h);
    ``opt_lower`` any valid lower bound on OPT in shelves.
    """
    coloring = color_shelves(run)
    r, g = coloring.n_red, coloring.n_green
    if not tol.leq(r, 2.0 * area, atol=1e-7):
        raise AssertionError(f"red-shelf bound violated: r={r} > 2*AREA={2 * area:g}")
    skips = run.n_skips
    # Every green shelf is a skip shelf (proof of Thm 2.6).  A shelf that is
    # green yet closed by width must have forced area>=1 with its successor,
    # contradicting its colour.
    for idx, c in enumerate(coloring.colors):
        if c == "green" and not run.shelves[idx].closed_by_skip:
            raise AssertionError(f"green shelf {idx} was not a skip shelf")
    return {"red": r, "green": g, "skips": skips, "total": len(run.shelves)}
