"""Greedy list scheduling — the measured baseline for Section 2.

Processes rectangles in a topological order (default: by critical path
``F(s) - h_s``, i.e. earliest feasible base first).  Each rectangle is
placed at the lowest feasible height at or above the tops of its
predecessors, at the leftmost x-position that is free across its entire
vertical span.

This is the "what a practical scheduler would do" baseline the DC
experiments compare against: no worst-case guarantee, typically strong on
shallow DAGs, degrading as chains lengthen.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..core import tol
from ..core.instance import PrecedenceInstance
from ..core.placement import PlacedRect, Placement
from ..dag.critical_path import compute_F

__all__ = ["list_schedule"]

Node = Hashable


def _free_x_at(
    placed: list[PlacedRect], y: float, h: float, w: float
) -> float | None:
    """Leftmost ``x`` such that ``[x, x+w) x [y, y+h)`` avoids all placed
    rectangles, or ``None`` when no horizontal room exists at this ``y``."""
    blockers = sorted(
        ((pr.x, pr.x2) for pr in placed if tol.lt(pr.y, y + h) and tol.lt(y, pr.y2)),
        key=lambda iv: iv[0],
    )
    x = 0.0
    for lo, hi in blockers:
        if tol.leq(x + w, lo):
            break
        x = max(x, hi)
    if tol.leq(x + w, 1.0):
        return tol.clamp(x, 0.0, 1.0 - w)
    return None


def list_schedule(instance: PrecedenceInstance) -> Placement:
    """Greedy earliest-start list schedule (baseline, no guarantee).

    Candidate heights for each rectangle are its earliest feasible base
    (max over predecessor tops) plus the tops of already-placed rectangles
    above it; the first candidate with horizontal room wins.
    """
    by_id = instance.by_id()
    dag = instance.dag
    F = compute_F(dag, instance.heights())
    order = sorted(dag.topological_order(), key=lambda s: (F[s] - by_id[s].height, F[s], str(s)))

    placement = Placement()
    placed: list[PlacedRect] = []
    for rid in order:
        r = by_id[rid]
        earliest = max(
            (placement[p].y2 for p in dag.predecessors(rid)),
            default=0.0,
        )
        # Candidate bases: earliest itself plus every placed top above it.
        candidates = sorted(
            {earliest} | {pr.y2 for pr in placed if tol.gt(pr.y2, earliest)}
        )
        for y in candidates:
            x = _free_x_at(placed, y, r.height, r.width)
            if x is not None:
                placement.place(r, x, y)
                placed.append(placement[rid])
                break
        else:  # pragma: no cover - candidates always include a free top
            raise AssertionError("no feasible position found above all placed tops")
    return placement
