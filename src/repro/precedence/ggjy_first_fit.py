"""First Fit for precedence-constrained bin packing, Garey-Graham-
Johnson-Yao style.

The level algorithms in :mod:`repro.precedence.bin_packing` close bins one
at a time (a rectangle can only enter the single currently-open bin).
Garey et al.'s First Fit is stronger: process tasks in a topological
order; task ``t`` goes into the **earliest-indexed** bin that (a) is
strictly later than every bin holding a predecessor of ``t`` and (b) has
room.  New bins are appended on demand.  Their asymptotic analysis (as a
special case of resource-constrained scheduling) yields the 2.7 bound the
paper imports for uniform-height strip packing.

Two orderings are provided because they matter empirically:

* ``topological`` — plain Kahn order (arrival order);
* ``decreasing``  — among ready tasks, larger sizes first (FFD flavour).
"""

from __future__ import annotations

import heapq
from typing import Hashable, Literal

from ..core import tol
from .bin_packing import BinAssignment, BinPackingInstance

__all__ = ["ggjy_first_fit"]

Node = Hashable


def ggjy_first_fit(
    instance: BinPackingInstance,
    order: Literal["topological", "decreasing"] = "decreasing",
) -> BinAssignment:
    """Run GGJY First Fit on ``instance``.

    Unlike the level algorithms, earlier bins stay open forever: a small
    late task can back-fill an old bin as long as its predecessors all sit
    strictly before it.
    """
    dag = instance.dag
    sizes = instance.sizes

    bins: list[list[Node]] = []
    loads: list[float] = []
    bin_of: dict[Node, int] = {}

    # Ready priority queue keyed by the chosen order.
    indeg = {t: dag.in_degree(t) for t in sizes}
    heap: list[tuple] = []

    def key(t: Node):
        if order == "decreasing":
            return (-sizes[t], str(t))
        return (str(t),)

    for t in sizes:
        if indeg[t] == 0:
            heapq.heappush(heap, (*key(t), t))

    processed = 0
    while heap:
        t = heapq.heappop(heap)[-1]
        processed += 1
        # Earliest allowed bin index: strictly after every predecessor.
        min_bin = 0
        for p in dag.predecessors(t):
            min_bin = max(min_bin, bin_of[p] + 1)
        placed = False
        for b in range(min_bin, len(bins)):
            if tol.leq(loads[b] + sizes[t], 1.0):
                bins[b].append(t)
                loads[b] += sizes[t]
                bin_of[t] = b
                placed = True
                break
        if not placed:
            # Append bins until the index constraint is met, then place.
            while len(bins) < min_bin:
                bins.append([])
                loads.append(0.0)
            bins.append([t])
            loads.append(sizes[t])
            bin_of[t] = len(bins) - 1
        for s in dag.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(heap, (*key(s), s))

    if processed != len(sizes):  # pragma: no cover - DAG validity guarantees this
        raise AssertionError("first fit did not process every task")
    # Empty filler bins may remain if min_bin jumped past the end; they are
    # legitimate (a bin sequence may contain empty bins) but wasteful —
    # First Fit never actually leaves one empty because a predecessor
    # occupies every index below min_bin.  Drop any trailing empties anyway.
    while bins and not bins[-1]:
        bins.pop()
    return BinAssignment(bins=bins)
