"""Section 2 algorithms: DC divide-and-conquer, shelf Next-Fit (Algorithm F),
shelf conversion, precedence-constrained bin packing, list scheduling."""

from .accounting import ShelfColoring, color_shelves, verify_accounting
from .bin_packing import (
    BinAssignment,
    BinPackingInstance,
    bins_to_placement,
    chain_lower_bound,
    precedence_first_fit_decreasing,
    precedence_next_fit,
    size_lower_bound,
    strip_to_bin_instance,
)
from .dc import DCBand, DCResult, dc_pack
from .ggjy_first_fit import ggjy_first_fit
from .list_schedule import list_schedule
from .shelf_conversion import is_shelf_solution, shelf_index, to_shelf_solution
from .shelf_nextfit import ShelfRun, shelf_next_fit

__all__ = [
    "dc_pack",
    "DCResult",
    "DCBand",
    "shelf_next_fit",
    "ShelfRun",
    "to_shelf_solution",
    "is_shelf_solution",
    "shelf_index",
    "BinPackingInstance",
    "BinAssignment",
    "strip_to_bin_instance",
    "bins_to_placement",
    "precedence_next_fit",
    "precedence_first_fit_decreasing",
    "ggjy_first_fit",
    "chain_lower_bound",
    "size_lower_bound",
    "list_schedule",
    "color_shelves",
    "ShelfColoring",
    "verify_accounting",
]
