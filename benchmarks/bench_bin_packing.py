"""E5 — Section 2.2 reduction: shelf conversion and precedence-constrained
bin packing (the Garey-Graham-Johnson-Yao regime).

Shape checks:
* the slide-down conversion never increases height and always yields a
  shelf solution (the reduction's first half);
* bin assignments from next-fit and FFD are feasible and within the
  asymptotic regime's expectations: FFD's bins <= NF's bins (up to noise)
  and both within 3x the elementary bin lower bound (next-fit is provably
  3-approximate via Theorem 2.6; Garey et al. give 2.7 asymptotically).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.placement import validate_placement
from repro.precedence.bin_packing import (
    bins_to_placement,
    chain_lower_bound,
    precedence_first_fit_decreasing,
    precedence_next_fit,
    size_lower_bound,
    strip_to_bin_instance,
)
from repro.precedence.shelf_conversion import is_shelf_solution, to_shelf_solution
from repro.precedence.list_schedule import list_schedule
from repro.workloads.dags import uniform_height_precedence_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "bin_packing"


def test_e5_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


SIZES = [16, 32, 64, 128]


def test_e5_bin_packing_and_shelf_conversion():
    rng = np.random.default_rng(7)
    inst = uniform_height_precedence_instance(96, 0.05, rng)
    bin_inst = strip_to_bin_instance(inst)

    table = Table(
        ["n", "lb", "next_fit", "ffd", "nf_ratio", "ffd_ratio"],
        title="E5 precedence bin packing (uniform height)",
    )
    for n in SIZES:
        rng = np.random.default_rng(100 + n)
        inst = uniform_height_precedence_instance(n, 0.05, rng)
        bin_inst = strip_to_bin_instance(inst)
        lb = max(size_lower_bound(bin_inst), chain_lower_bound(bin_inst))
        nf = precedence_next_fit(bin_inst)
        ffd = precedence_first_fit_decreasing(bin_inst)
        nf.validate(bin_inst)
        ffd.validate(bin_inst)
        # Bin assignments map back to valid shelf placements.
        validate_placement(inst, bins_to_placement(inst, ffd))
        assert nf.n_bins <= 3 * lb + 1  # Theorem 2.6 carried to bins
        table.add_row(
            [n, lb, nf.n_bins, ffd.n_bins, nf.n_bins / lb, ffd.n_bins / lb]
        )
    emit("e5_bin_packing", table.render())

    # Shelf conversion: take a non-shelf valid placement (list scheduling
    # may float rectangles), convert, verify height never grows.
    rng = np.random.default_rng(13)
    inst = uniform_height_precedence_instance(48, 0.08, rng)
    base = list_schedule(inst)
    validate_placement(inst, base)
    converted = to_shelf_solution(inst, base, paranoid=True)
    validate_placement(inst, converted)
    assert is_shelf_solution(converted, 1.0)
    assert converted.height <= base.height + 1e-9
