"""E7 — Lemma 3.2 / Figs. 3-4: width grouping costs at most a factor
``1 + K(R+1)/W`` on the fractional optimum.

Shape checks: the measured factor OPT_f(P(R,W)) / OPT_f(P(R)) stays below
the lemma's bound for every width budget, decreases as W grows, and the
Fig. 3/4 containment chain holds for every release class.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.geometry.stacking import contains, stack
from repro.release.grouping import group_widths
from repro.release.lp import optimal_fractional_height
from repro.release.rounding import round_releases_up
from repro.workloads.releases import bursty_release_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "grouping"


def test_e7_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


GROUPS_PER_CLASS = [1, 2, 3, 4]


def test_e7_width_grouping_cost():
    rng = np.random.default_rng(31)
    K = 6
    inst = bursty_release_instance(30, K, rng, n_bursts=3)
    rounded = round_releases_up(inst, 0.5)
    n_classes = len({r.release for r in rounded.rects})

    base = optimal_fractional_height(rounded)
    table = Table(
        ["G/class", "W", "distinct_w", "opt_f(P(R))", "opt_f(P(R,W))", "factor", "lemma_bound"],
        title="E7 Lemma 3.2 width grouping",
    )
    factors = []
    for g in GROUPS_PER_CLASS:
        W = g * n_classes
        out = group_widths(rounded, W)
        h = optimal_fractional_height(out.instance)
        factor = h / base
        lemma = 1 + K * n_classes / W
        assert factor <= lemma + 1e-6, f"Lemma 3.2 bound violated at W={W}"
        factors.append(factor)
        # Fig. 3/4 containment chain per class.
        orig_classes = rounded.release_classes()
        new_classes = out.instance.release_classes()
        for rel in orig_classes:
            assert contains(stack(new_classes[rel]), stack(orig_classes[rel]))
        table.add_row([g, W, out.n_distinct_widths, base, h, factor, lemma])
    emit("e7_grouping", table.render())
    # Shape: cost shrinks (weakly) as the width budget grows.
    assert factors[-1] <= factors[0] + 1e-9
