"""Benchmark harness: one module per experiment in DESIGN.md (E1..E12)."""
