"""E9 — Theorem 3.5: end-to-end APTAS quality.

Shape checks:
* the integral solution obeys ``S(R,W) <= (1+eps) * OPT_f + #occurrences``
  with ``#occurrences <= (W+1)(R+1)`` for every run;
* asymptotics: as the instance grows (more work per phase) the measured
  ratio to OPT_f approaches 1 + eps from above — the additive term washes
  out, which is exactly what "asymptotic PTAS" means.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.placement import validate_placement
from repro.release.aptas import aptas
from repro.release.lp import optimal_fractional_height
from repro.workloads.releases import bursty_release_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "aptas"


def test_e9_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


SIZES = [10, 20, 40, 80, 160]
EPS = 0.9
K = 4


def _scaled_instance(n, seed=0):
    """Bursty workload whose total work grows with n while the release
    structure stays fixed — the asymptotic regime."""
    rng = np.random.default_rng(seed)
    return bursty_release_instance(n, K, rng, n_bursts=3, burst_gap=float(n) / 8.0)


def test_e9_aptas_asymptotics():
    inst = _scaled_instance(40)

    table = Table(
        ["n", "opt_f", "aptas", "occurrences", "ratio", "(1+eps)+add/opt_f"],
        title=f"E9 APTAS end-to-end (eps={EPS}, K={K})",
    )
    ratios = []
    for n in SIZES:
        inst = _scaled_instance(n)
        res = aptas(inst, eps=EPS)
        validate_placement(inst, res.placement)
        opt_f = optimal_fractional_height(inst)
        k_occ = res.integral.n_occurrences
        # Theorem 3.5 with the realised additive term.
        assert res.height <= (1 + EPS) * opt_f + k_occ + 1e-6
        ratio = res.height / opt_f
        ratios.append(ratio)
        table.add_row([n, opt_f, res.height, k_occ, ratio, (1 + EPS) + k_occ / opt_f])
    emit("e9_aptas", table.render())
    # Shape: the measured ratio declines from its small-n peak (where the
    # additive term bites) and ends at or below the 1+eps guarantee.
    assert ratios[-1] <= max(ratios[:-1]) + 1e-9
    assert ratios[-1] <= 1 + EPS


@pytest.mark.parametrize("eps", [1.5, 0.9, 0.6])
def test_e9_aptas_eps_sweep(eps):
    inst = _scaled_instance(60, seed=3)
    res = aptas(inst, eps=eps)
    validate_placement(inst, res.placement)
    opt_f = optimal_fractional_height(inst)
    assert res.height <= (1 + eps) * opt_f + res.integral.n_occurrences + 1e-6
