"""A4 — the price of not knowing the future (online vs offline release
scheduling) and true-optimum ratios for the bin algorithms.

The paper's release-time model comes from operating systems that schedule
hardware tasks online (ref [23]); the offline APTAS is the other end of
the knowledge spectrum.  This bench measures:

* online first-fit vs the offline APTAS vs OPT_f on bursty workloads —
  online pays for early commitments, the gap is the price of clairvoyance;
* the Section 2.2 bin algorithms against the *exact* optimum (via the
  ideal-lattice solver), tightening E5's lower-bound-based ratios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.exact.bin_packing_exact import solve_bin_packing_exact
from repro.precedence.bin_packing import (
    precedence_first_fit_decreasing,
    precedence_next_fit,
    strip_to_bin_instance,
)
from repro.precedence.ggjy_first_fit import ggjy_first_fit
from repro.engine import run
from repro.release.lp import optimal_fractional_height
from repro.release.online import online_first_fit
from repro.workloads.dags import uniform_height_precedence_instance
from repro.workloads.releases import bursty_release_instance

from .conftest import bench_quick, emit, emit_reports


BENCH_SPEC = "online_vs_offline"


def test_a4_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


K = 4


def _inst(n, seed=0):
    rng = np.random.default_rng(seed)
    return bursty_release_instance(n, K, rng, n_bursts=3, burst_gap=float(n) / 8.0)


def test_a4_online_vs_offline():
    inst0 = _inst(40)

    table = Table(
        ["n", "opt_f", "online_ff", "offline_aptas", "online/opt_f", "aptas/opt_f"],
        title=f"A4 online first-fit vs offline APTAS (K={K})",
    )
    all_reports = []
    for n in (10, 20, 40, 80):
        inst = _inst(n)
        rep_on = run(inst, "online_ff", label=f"n={n}:online_ff")
        rep_off = run(inst, "aptas", params={"eps": 0.9}, label=f"n={n}:aptas")
        assert rep_on.valid and rep_off.valid
        all_reports += [rep_on, rep_off]
        opt_f = optimal_fractional_height(inst)
        table.add_row(
            [n, opt_f, rep_on.height, rep_off.height,
             rep_on.height / opt_f, rep_off.height / opt_f]
        )
        # Both are integral solutions above the fractional optimum.
        assert rep_on.height >= opt_f - 1e-6
        assert rep_off.height >= opt_f - 1e-6
    emit("a4_online_offline", table.render())
    emit_reports("a4_online_offline_reports", all_reports,
                 title=f"A4 engine reports (K={K})")


def test_a4_bins_vs_true_optimum():
    rng = np.random.default_rng(77)
    inst0 = uniform_height_precedence_instance(10, 0.15, rng)
    bin0 = strip_to_bin_instance(inst0)

    table = Table(
        ["seed", "n", "opt", "next_fit", "level_ffd", "ggjy_ff"],
        title="A4b bin algorithms vs exact optimum (n=10)",
    )
    worst_nf = 0.0
    for seed in range(8):
        rng = np.random.default_rng(700 + seed)
        inst = uniform_height_precedence_instance(10, 0.15, rng)
        bin_inst = strip_to_bin_instance(inst)
        opt = solve_bin_packing_exact(bin_inst, max_states=150_000).n_bins
        nf = precedence_next_fit(bin_inst).n_bins
        ffd = precedence_first_fit_decreasing(bin_inst).n_bins
        ggjy = ggjy_first_fit(bin_inst).n_bins
        worst_nf = max(worst_nf, nf / opt)
        # Theorem 2.6 carried to bins, now against the *true* optimum.
        assert nf <= 3 * opt
        table.add_row([seed, 10, opt, nf, ffd, ggjy])
    emit("a4b_bins_exact", table.render())
    assert worst_nf <= 3.0
