"""Ablation A1 — DC's subroutine-A choice.

Algorithm 1 only requires ``A(S') <= 2*AREA(S') + hmax``; any packer can be
plugged in.  This ablation swaps NFDH (the default, with the proven
contract) for FFDH, BFDH and skyline bottom-left and measures the end
height across DAG shapes.

Shape expectation: the packers with better practical density (BL/BFDH)
improve DC's bands somewhat, but all variants stay within the Theorem 2.3
envelope — the guarantee comes from the band decomposition, not the
packer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound, dc_guarantee
from repro.core.placement import validate_placement
from repro.packing import bfdh, bottom_left, ffdh, nfdh
from repro.precedence.dc import dc_pack
from repro.workloads.dags import layered_precedence_instance, random_precedence_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "dc_subroutine"


def test_a1_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


SUBROUTINES = {"nfdh": nfdh, "ffdh": ffdh, "bfdh": bfdh, "bottom_left": bottom_left}


@pytest.mark.parametrize("sub_name", list(SUBROUTINES))
def test_a1_dc_subroutine_ablation(sub_name):
    rng = np.random.default_rng(17)
    inst = random_precedence_instance(96, 0.08, rng)
    sub = SUBROUTINES[sub_name]
    result = dc_pack(inst, subroutine=sub)
    validate_placement(inst, result.placement)
    bound = dc_guarantee(len(inst), area_bound(inst), critical_path_bound(inst))
    assert result.height <= bound + 1e-7


def test_a1_dc_subroutine_table():
    rng = np.random.default_rng(18)
    inst0 = random_precedence_instance(96, 0.08, rng)

    table = Table(
        ["workload", "n", *SUBROUTINES.keys()],
        title="A1 DC height by subroutine A",
    )
    for wname, gen in (
        ("random", lambda n, r: random_precedence_instance(n, 0.08, r)),
        ("layered", lambda n, r: layered_precedence_instance(n, 8, 0.2, r)),
    ):
        for n in (64, 128):
            rng = np.random.default_rng(200 + n)
            inst = gen(n, rng)
            heights = []
            for sub in SUBROUTINES.values():
                result = dc_pack(inst, subroutine=sub)
                validate_placement(inst, result.placement)
                heights.append(result.height)
            table.add_row([wname, n, *heights])
    emit("a1_dc_subroutine", table.render())
