"""E4 — Lemma 2.7 / Fig. 2: tightness of the factor-3 analysis.

Paper claim: uniform-height instances exist with
``OPT = 3 * (F - 1) = 3 * AREA - 3 n eps`` — so no algorithm can be proved
better than 3-approximate against the two elementary lower bounds.

Shape checks: the measured optimal-structure packing (Algorithm F achieves
the forced serialisation exactly) has height n, while max(AREA, F) ~ n/3,
i.e. the ratio tends to 3 as eps -> 0 and k grows.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound
from repro.core.placement import validate_placement
from repro.precedence.shelf_nextfit import shelf_next_fit
from repro.workloads.adversarial import ratio3_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "fig2_ratio3"


def test_e4_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


KS = [1, 2, 3, 4, 6, 8]
EPS = 1e-6


def test_e4_fig2_ratio3_family():
    adv = ratio3_instance(6, eps=EPS)

    table = Table(
        ["k", "n", "AREA", "F", "opt", "height", "ratio_vs_lb"],
        title="E4 Fig.2 ratio-3 tightness family",
    )
    last_ratio = 0.0
    for k in KS:
        adv = ratio3_instance(k, eps=EPS)
        inst = adv.instance
        run = shelf_next_fit(inst)
        validate_placement(inst, run.placement)
        area = area_bound(inst)
        F = critical_path_bound(inst)
        lb = max(area, F)
        # Algorithm F realises the forced serialisation: height == OPT == n.
        assert math.isclose(run.height, adv.analytic["opt"], rel_tol=1e-9)
        # Lemma's equalities hold computationally.
        assert math.isclose(adv.analytic["opt"], 3 * (F - 1), rel_tol=1e-6)
        assert math.isclose(
            adv.analytic["opt"], 3 * area - 3 * adv.analytic["n"] * EPS, rel_tol=1e-5
        )
        ratio = run.height / lb
        table.add_row([k, adv.analytic["n"], area, F, adv.analytic["opt"], run.height, ratio])
        last_ratio = ratio
    emit("e4_fig2_ratio3", table.render())
    # Shape: the OPT/lower-bound gap approaches 3 from below as k grows.
    assert last_ratio > 2.6
    assert last_ratio < 3.0 + 1e-9
