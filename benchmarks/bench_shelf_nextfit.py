"""E3 — Theorem 2.6: Algorithm F's absolute 3-approximation and the
red/green accounting of its proof.

Shape checks per run: height <= 3 * max(AREA, F); red shelves <= 2*AREA;
every green shelf is a skip shelf; skips <= F (chain bound).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound
from repro.core.placement import validate_placement
from repro.precedence.accounting import color_shelves, verify_accounting
from repro.precedence.shelf_nextfit import shelf_next_fit
from repro.workloads.dags import uniform_height_precedence_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "shelf_nextfit"


def test_e3_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


SIZES = [16, 32, 64, 128, 256]
EDGE_PS = [0.0, 0.05, 0.2]


def test_e3_shelf_next_fit_three_approx():
    rng = np.random.default_rng(0)
    inst = uniform_height_precedence_instance(128, 0.05, rng)

    table = Table(
        ["n", "p", "shelves", "red", "green", "skips", "lb", "ratio"],
        title="E3 Algorithm F (shelf next-fit), uniform height",
    )
    worst = 0.0
    for n in SIZES:
        for p in EDGE_PS:
            rng = np.random.default_rng(1000 + n)
            inst = uniform_height_precedence_instance(n, p, rng)
            run = shelf_next_fit(inst)
            validate_placement(inst, run.placement)
            area = area_bound(inst)
            F = critical_path_bound(inst)
            lb = max(area, F)
            ratio = run.height / lb
            worst = max(worst, ratio)
            stats = verify_accounting(run, area=area, opt_lower=lb)
            # Lemma 2.5 via the chain bound (unit heights).
            assert stats["skips"] <= F + 1e-9
            # Theorem 2.6 against the lower bound (implies vs OPT).
            assert run.height <= 3.0 * lb + 1e-7
            table.add_row(
                [n, p, len(run.shelves), stats["red"], stats["green"], stats["skips"], lb, ratio]
            )
    emit("e3_shelf_nextfit", table.render())
    assert worst <= 3.0 + 1e-9
