"""E1 — Theorem 2.3: DC's measured height vs its proven guarantee.

Paper claim: ``DC(S) <= log2(n+1) * F(S) + 2 * AREA(S)`` and hence
``DC <= (2 + log(n+1)) * OPT``.  The harness sweeps n over three DAG
families, reports the achieved height, the elementary lower bound
``max(AREA, F)``, the theorem's bound, and the ratios.  Shape check:
the measured height never exceeds the theorem bound, and the measured
ratio grows (at most) logarithmically with n — far below the worst case
on random inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound, dc_guarantee
from repro.core.placement import validate_placement
from repro.precedence.dc import dc_pack
from repro.workloads.dags import (
    layered_precedence_instance,
    random_precedence_instance,
    series_parallel_instance,
)

from .conftest import bench_quick, emit


BENCH_SPEC = "dc_ratio"


def test_e1_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


FAMILIES = {
    "random(p=0.05)": lambda n, rng: random_precedence_instance(n, 0.05, rng),
    "layered(L=8)": lambda n, rng: layered_precedence_instance(n, 8, 0.2, rng),
    "series-parallel": lambda n, rng: series_parallel_instance(n, rng),
}
SIZES = [16, 32, 64, 128, 256]


def _run_family(name: str, n: int, seed: int = 0):
    rng = np.random.default_rng(seed + n)
    inst = FAMILIES[name](n, rng)
    result = dc_pack(inst)
    validate_placement(inst, result.placement)
    lb = max(area_bound(inst), critical_path_bound(inst))
    bound = dc_guarantee(n, area_bound(inst), critical_path_bound(inst))
    return inst, result, lb, bound


@pytest.mark.parametrize("family", list(FAMILIES))
def test_e1_dc_ratio_sweep(family):
    # Time one representative size; sweep + assertions outside the timer.
    rng = np.random.default_rng(1)
    inst = FAMILIES[family](128, rng)

    table = Table(
        ["n", "height", "lower_bound", "ratio", "thm_bound", "bound_ok"],
        title=f"E1 DC vs lower bound — {family}",
    )
    ratios = []
    for n in SIZES:
        _, result, lb, bound = _run_family(family, n)
        ratio = result.height / lb
        ratios.append(ratio)
        assert result.height <= bound + 1e-7, "Theorem 2.3 bound violated"
        table.add_row([n, result.height, lb, ratio, bound, result.height <= bound])
    emit(f"e1_dc_ratio_{family.split('(')[0]}", table.render())
    # Shape: ratios stay an order of magnitude below the worst-case factor
    # 2 + log2(n+1) on random inputs.
    import math

    for n, ratio in zip(SIZES, ratios):
        assert ratio <= 2 + math.log2(n + 1)
