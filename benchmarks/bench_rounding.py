"""E6 — Lemma 3.1: release rounding costs at most a (1 + eps) factor on the
fractional optimum.

Shape check: OPT_f(P(R)) <= (1 + eps) * OPT_f(P) across eps and workloads,
and the number of distinct release values collapses to <= ceil(1/eps) + 1.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.release.lp import optimal_fractional_height
from repro.release.rounding import round_releases_up
from repro.workloads.releases import poisson_release_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "rounding"


def test_e6_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


EPSES = [0.5, 0.33, 0.25, 0.2]


def test_e6_release_rounding_cost():
    rng = np.random.default_rng(21)
    inst = poisson_release_instance(24, 4, rng, rate=1.5, max_cols=4)

    table = Table(
        ["eps", "classes_before", "classes_after", "opt_f", "opt_f_rounded", "factor", "1+eps"],
        title="E6 Lemma 3.1 release rounding",
    )
    rng = np.random.default_rng(22)
    inst = poisson_release_instance(18, 4, rng, rate=1.5, max_cols=4)
    base = optimal_fractional_height(inst)
    for eps in EPSES:
        rounded = round_releases_up(inst, eps)
        n_before = len({r.release for r in inst.rects})
        n_after = len({r.release for r in rounded.rects})
        assert n_after <= math.ceil(1 / eps) + 1
        h = optimal_fractional_height(rounded)
        factor = h / base
        # Lemma 3.1's bound.
        assert factor <= 1 + eps + 1e-6
        table.add_row([eps, n_before, n_after, base, h, factor, 1 + eps])
    emit("e6_rounding", table.render())
