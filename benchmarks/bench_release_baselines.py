"""E10 — APTAS vs release-aware heuristics.

Shape checks: on batched (bursty) workloads with dense per-phase work, the
APTAS's LP-guided packing tracks OPT_f while the batch-shelf heuristic
pays fragmentation; bottom-left sits in between.  On tiny instances the
heuristics win (the APTAS's additive term dominates) — the crossover is
the asymptotic story of Theorem 3.5.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.placement import validate_placement
from repro.release.aptas import aptas
from repro.release.heuristics import release_bottom_left, release_shelf_pack
from repro.release.lp import optimal_fractional_height
from repro.workloads.releases import bursty_release_instance

from .conftest import emit

K = 4
SIZES = [10, 20, 40, 80, 160]
EPS = 0.9


def _inst(n, seed=0):
    rng = np.random.default_rng(seed)
    return bursty_release_instance(n, K, rng, n_bursts=3, burst_gap=float(n) / 8.0)


@pytest.mark.parametrize(
    "name,solver",
    [
        ("aptas", lambda inst: aptas(inst, eps=EPS).placement),
        ("shelf", release_shelf_pack),
        ("bottom_left", release_bottom_left),
    ],
)
def test_e10_baseline_timing(benchmark, name, solver):
    inst = _inst(40, seed=1)
    p = benchmark(lambda: solver(inst))
    validate_placement(inst, p)


def test_e10_quality_comparison(benchmark):
    benchmark(lambda: release_shelf_pack(_inst(40, seed=1)))

    table = Table(
        ["n", "opt_f", "aptas", "shelf", "bottom_left", "aptas/opt_f", "shelf/opt_f", "bl/opt_f"],
        title=f"E10 APTAS vs heuristics (eps={EPS}, K={K})",
    )
    aptas_ratios, shelf_ratios = [], []
    for n in SIZES:
        inst = _inst(n)
        opt_f = optimal_fractional_height(inst)
        h_aptas = aptas(inst, eps=EPS).height
        h_shelf = release_shelf_pack(inst).height
        h_bl = release_bottom_left(inst).height
        aptas_ratios.append(h_aptas / opt_f)
        shelf_ratios.append(h_shelf / opt_f)
        table.add_row(
            [n, opt_f, h_aptas, h_shelf, h_bl,
             h_aptas / opt_f, h_shelf / opt_f, h_bl / opt_f]
        )
    emit("e10_baselines", table.render())
    # Shape: the APTAS ratio declines from its small-n peak toward the
    # 1+eps guarantee...
    assert aptas_ratios[-1] <= max(aptas_ratios[:-1]) + 1e-9
    assert aptas_ratios[-1] <= 1 + EPS
    # ...and at the largest size it is competitive with the batch-shelf
    # heuristic (within a small constant; see EXPERIMENTS.md for the honest
    # reading — at tractable parameters the heuristics remain strong and the
    # APTAS's value is its guarantee).
    assert aptas_ratios[-1] <= shelf_ratios[-1] + 0.15
