"""E10 — APTAS vs release-aware heuristics.

Shape checks: on batched (bursty) workloads with dense per-phase work, the
APTAS's LP-guided packing tracks OPT_f while the batch-shelf heuristic
pays fragmentation; bottom-left sits in between.  On tiny instances the
heuristics win (the APTAS's additive term dominates) — the crossover is
the asymptotic story of Theorem 3.5.

Solver calls go through the engine: each measurement is one
``SolveReport`` (height, wall-time, validation) instead of a hand-rolled
timer/validator pair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.placement import validate_placement
from repro.engine import run
from repro.release.lp import optimal_fractional_height
from repro.workloads.releases import bursty_release_instance

from .conftest import bench_quick, emit, emit_reports


BENCH_SPEC = "release_baselines"


def test_e10_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


K = 4
SIZES = [10, 20, 40, 80, 160]
EPS = 0.9
ALGORITHMS = ("aptas", "release_shelf", "release_bl")


def _inst(n, seed=0):
    rng = np.random.default_rng(seed)
    return bursty_release_instance(n, K, rng, n_bursts=3, burst_gap=float(n) / 8.0)


def _params(name):
    return {"eps": EPS} if name == "aptas" else None


@pytest.mark.parametrize("name", ALGORITHMS)
def test_e10_baseline_timing(name):
    inst = _inst(40, seed=1)
    report = run(inst, name, params=_params(name), validate=False, compute_bounds=False)
    validate_placement(inst, report.placement)


def test_e10_quality_comparison():

    table = Table(
        ["n", "opt_f", "aptas", "shelf", "bottom_left", "aptas/opt_f", "shelf/opt_f", "bl/opt_f"],
        title=f"E10 APTAS vs heuristics (eps={EPS}, K={K})",
    )
    all_reports = []
    aptas_ratios, shelf_ratios = [], []
    for n in SIZES:
        inst = _inst(n)
        opt_f = optimal_fractional_height(inst)
        reports = {
            name: run(inst, name, params=_params(name), label=f"n={n}:{name}")
            for name in ALGORITHMS
        }
        for r in reports.values():
            assert r.valid
        all_reports.extend(reports.values())
        h_aptas = reports["aptas"].height
        h_shelf = reports["release_shelf"].height
        h_bl = reports["release_bl"].height
        aptas_ratios.append(h_aptas / opt_f)
        shelf_ratios.append(h_shelf / opt_f)
        table.add_row(
            [n, opt_f, h_aptas, h_shelf, h_bl,
             h_aptas / opt_f, h_shelf / opt_f, h_bl / opt_f]
        )
    emit("e10_baselines", table.render())
    emit_reports("e10_baseline_reports", all_reports,
                 title=f"E10 engine reports (eps={EPS}, K={K})")
    # Shape: the APTAS ratio declines from its small-n peak toward the
    # 1+eps guarantee...
    assert aptas_ratios[-1] <= max(aptas_ratios[:-1]) + 1e-9
    assert aptas_ratios[-1] <= 1 + EPS
    # ...and at the largest size it is competitive with the batch-shelf
    # heuristic (within a small constant; see EXPERIMENTS.md for the honest
    # reading — at tractable parameters the heuristics remain strong and the
    # APTAS's value is its guarantee).
    assert aptas_ratios[-1] <= shelf_ratios[-1] + 0.15
