"""Ablation A2 — the APTAS's width-budget knob.

Lemma 3.2 trades distinct widths (``W``, which drives LP size and the
additive term ``(W+1)(R+1)``) against fractional quality (factor
``1 + K(R+1)/W``).  This ablation sweeps groups-per-class and records both
the *fractional* height (monotone improving — more widths can only help
the LP) and the *integral* height (non-monotone: more occurrences mean
more additive slack), plus LP size.

This is the engineering trade-off DESIGN.md documents: the theory's W is
astronomically large; practice picks the knee of this curve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.placement import validate_placement
from repro.release.aptas import aptas
from repro.release.lp import optimal_fractional_height
from repro.workloads.releases import bursty_release_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "aptas_budget"


def test_a2_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


GROUPS = [1, 2, 3, 4, 6]
K = 6


def _inst(n=40, seed=9):
    rng = np.random.default_rng(seed)
    return bursty_release_instance(n, K, rng, n_bursts=3, burst_gap=6.0)


@pytest.mark.parametrize("g", [1, 3])
def test_a2_budget_timing(g):
    inst = _inst()
    res = aptas(inst, eps=0.9, groups_per_class=g)
    validate_placement(inst, res.placement)


def test_a2_budget_sweep():
    inst = _inst()

    opt_f = optimal_fractional_height(inst)
    table = Table(
        ["G/class", "W_eff", "configs", "frac_height", "integral", "occurrences",
         "integral/opt_f"],
        title=f"A2 APTAS width-budget sweep (K={K}, n={len(inst)})",
    )
    fracs = []
    for g in GROUPS:
        res = aptas(inst, eps=0.9, groups_per_class=g)
        validate_placement(inst, res.placement)
        fracs.append(res.fractional.height)
        table.add_row(
            [g, res.W, res.fractional.config_set.Q, res.fractional.height,
             res.height, res.integral.n_occurrences, res.height / opt_f]
        )
    emit("a2_aptas_budget", table.render())
    # Shape: fractional height is (weakly) non-increasing in the budget.
    for a, b in zip(fracs, fracs[1:]):
        assert b <= a + 1e-6
