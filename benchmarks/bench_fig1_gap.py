"""E2 — Lemma 2.4 / Fig. 1: the Omega(log n) lower-bound gap family.

Paper claim: there are instances where both elementary lower bounds stay
~1 while any valid packing needs Omega(log n) height (chains of
power-of-two rectangles interleaved with full-width slivers).

Shape checks:
* AREA and F stay below 1 + o(1) while k grows;
* the measured packing height of the family grows linearly in k
  (= log2-ish in n): the fitted slope of height against log2(n) is
  clearly positive (~1/2 per the shelf argument);
* ratio (height / max(AREA, F)) therefore grows like log n.
"""

from __future__ import annotations

import pytest

from repro.analysis.ratios import log_slope
from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound
from repro.core.placement import validate_placement
from repro.precedence.dc import dc_pack
from repro.workloads.adversarial import omega_log_n_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "fig1_gap"


def test_e2_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


KS = [2, 3, 4, 5, 6, 7]


def test_e2_fig1_gap_growth():
    adv = omega_log_n_instance(6, eps=1e-7)

    table = Table(
        ["k", "n", "AREA", "F", "dc_height", "ratio", "analytic_opt_lb"],
        title="E2 Fig.1 Omega(log n) gap family",
    )
    ns, heights, ratios = [], [], []
    for k in KS:
        adv = omega_log_n_instance(k, eps=1e-7)
        inst = adv.instance
        result = dc_pack(inst)
        validate_placement(inst, result.placement)
        area = area_bound(inst)
        F = critical_path_bound(inst)
        lb = max(area, F)
        ratio = result.height / lb
        ns.append(adv.analytic["n"])
        heights.append(result.height)
        ratios.append(ratio)
        # Both elementary bounds stay ~1...
        assert area < 1.01 and F < 1.01
        # ...while any packing pays at least ~k/2 (shelf argument).
        assert result.height >= adv.analytic["opt_lb"] - 0.5
        table.add_row([k, adv.analytic["n"], area, F, result.height, ratio, k / 2])
    emit("e2_fig1_gap", table.render())

    # Shape: height grows linearly in log2(n) with slope around 1/2..1.
    slope = log_slope(ns, heights)
    assert slope > 0.3, f"expected Theta(log n) growth, slope={slope}"
    # Ratio strictly grows with k.
    assert ratios[-1] > ratios[0] + 1.0
