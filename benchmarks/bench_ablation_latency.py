"""Ablation A3 — reconfiguration latency (model extension).

The paper's model treats reconfiguration as free; this ablation quantifies
what a per-task column-rewrite latency costs on the JPEG pipeline: the
dilation pass inserts gaps, the simulator independently verifies
feasibility, and the makespan overhead is reported as a function of the
latency.

Shape expectation: overhead grows roughly linearly in the latency with a
slope set by the depth of column-reuse chains, and is exactly 0 at
latency 0.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.fpga.device import Device
from repro.fpga.latency import dilate_for_reconfiguration
from repro.fpga.schedule import schedule_from_placement
from repro.fpga.simulator import simulate
from repro.precedence.dc import dc_pack
from repro.workloads.jpeg import jpeg_pipeline_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "latency_dilation"


def test_a3_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


LATENCIES = [0.0, 0.1, 0.25, 0.5, 1.0]


def test_a3_latency_overhead():
    dev0 = Device(K=16, reconfig_latency=0.25)
    inst0 = jpeg_pipeline_instance(6, dev0)
    base0 = dc_pack(inst0).placement

    table = Table(
        ["latency", "makespan", "overhead", "overhead/latency"],
        title="A3 reconfiguration latency on the JPEG pipeline (K=16, 6 tiles)",
    )
    overheads = []
    base_makespan = None
    for lat in LATENCIES:
        dev = Device(K=16, reconfig_latency=lat)
        inst = jpeg_pipeline_instance(6, dev)
        base = dc_pack(inst).placement
        dilated = dilate_for_reconfiguration(base, dev, dag=inst.dag)
        sched = schedule_from_placement(dilated, dev)
        sched.validate(dag=inst.dag)
        rep = simulate(sched)  # raises if the latency model is violated
        if base_makespan is None:
            base_makespan = rep.makespan
        overhead = rep.makespan - base_makespan
        overheads.append(overhead)
        table.add_row([lat, rep.makespan, overhead, overhead / lat if lat else 0.0])
    emit("a3_latency", table.render())
    assert math.isclose(overheads[0], 0.0, abs_tol=1e-9)
    # Shape: overhead is non-decreasing in latency.
    for a, b in zip(overheads, overheads[1:]):
        assert b >= a - 1e-9


def test_a3_ggjy_vs_level_bins():
    """Companion ablation: GGJY First Fit's back-filling vs the level
    algorithms on uniform-height instances (extends E5)."""
    import numpy as np

    from repro.precedence.bin_packing import (
        precedence_first_fit_decreasing,
        precedence_next_fit,
        size_lower_bound,
        chain_lower_bound,
        strip_to_bin_instance,
    )
    from repro.precedence.ggjy_first_fit import ggjy_first_fit
    from repro.workloads.dags import uniform_height_precedence_instance

    rng = np.random.default_rng(3)
    inst = uniform_height_precedence_instance(96, 0.05, rng)
    bin_inst = strip_to_bin_instance(inst)

    table = Table(
        ["n", "lb", "next_fit", "level_ffd", "ggjy_ff"],
        title="A3b GGJY First Fit vs level algorithms",
    )
    for n in (32, 64, 128):
        rng = np.random.default_rng(300 + n)
        inst = uniform_height_precedence_instance(n, 0.05, rng)
        bin_inst = strip_to_bin_instance(inst)
        lb = max(size_lower_bound(bin_inst), chain_lower_bound(bin_inst))
        nf = precedence_next_fit(bin_inst).n_bins
        ffd = precedence_first_fit_decreasing(bin_inst).n_bins
        ggjy = ggjy_first_fit(bin_inst)
        ggjy.validate(bin_inst)
        table.add_row([n, lb, nf, ffd, ggjy.n_bins])
        # Back-filling usually beats next-fit; against level-FFD it can lose
        # a few bins (placing a large ready task early pushes its successors
        # to strictly later bins) — keep both within a small band.
        assert ggjy.n_bins <= nf + 1
        assert ggjy.n_bins <= ffd + max(3, int(0.05 * ffd))
    emit("a3b_ggjy_bins", table.render())
