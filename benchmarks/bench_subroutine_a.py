"""E11 — the subroutine-A contract and unconstrained packer quality.

Shape checks:
* NFDH (and FFDH) satisfy ``A(S) <= 2*AREA + hmax`` on every sampled
  instance — the property Algorithm 1 needs from [22, 24];
* against the exact optimum (small columnar instances), all packers stay
  within small constant factors, ordering BL <= BFDH/FFDH <= NFDH on
  average.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ratios import RatioSample, summarize
from repro.analysis.report import Table
from repro.core.instance import StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import max_height, total_area
from repro.exact.branch_and_bound import solve_exact
from repro.packing import bfdh, bottom_left, ffdh, nfdh
from repro.workloads.random_rects import columnar_rects, powerlaw_rects, uniform_rects

from .conftest import bench_quick, emit


BENCH_SPEC = "packers"


def test_e11_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


PACKERS = {"nfdh": nfdh, "ffdh": ffdh, "bfdh": bfdh, "bottom_left": bottom_left}


@pytest.mark.parametrize("name", list(PACKERS))
def test_e11_packer_timing(name):
    rng = np.random.default_rng(3)
    rects = uniform_rects(200, rng)
    result = PACKERS[name](rects)
    validate_placement(StripPackingInstance(rects), result.placement)


def test_e11_contract_and_exact_ratios():
    rng = np.random.default_rng(5)
    rects = uniform_rects(100, rng)

    # Contract sweep: 2*AREA + hmax for NFDH/FFDH on three distributions.
    table = Table(
        ["distribution", "n", "packer", "extent", "2*AREA+hmax", "ok"],
        title="E11a subroutine-A contract",
    )
    dists = {
        "uniform": lambda n, rng: uniform_rects(n, rng),
        "powerlaw": lambda n, rng: powerlaw_rects(n, rng),
        "columnar(K=8)": lambda n, rng: columnar_rects(n, 8, rng),
    }
    for dist_name, gen in dists.items():
        for n in (20, 80):
            rng = np.random.default_rng(hash(dist_name) % 1000 + n)
            rects = gen(n, rng)
            bound = 2 * total_area(rects) + max_height(rects)
            for pname in ("nfdh", "ffdh"):
                extent = PACKERS[pname](rects).extent
                assert extent <= bound + 1e-7
                table.add_row([dist_name, n, pname, extent, bound, extent <= bound])
    emit("e11a_contract", table.render())

    # Exact-ratio sweep on small columnar instances.
    table2 = Table(
        ["packer", "count", "mean_ratio", "max_ratio"],
        title="E11b packers vs exact optimum (n=7, K=4)",
    )
    samples: dict[str, list[RatioSample]] = {p: [] for p in PACKERS}
    for seed in range(10):
        rng = np.random.default_rng(900 + seed)
        rects = columnar_rects(7, 4, rng)
        inst = StripPackingInstance(rects)
        opt = solve_exact(inst, K=4, max_nodes=400_000).height
        for pname, packer in PACKERS.items():
            h = packer(rects).extent
            samples[pname].append(RatioSample(h, opt, label=f"{pname}:{seed}"))
            assert h >= opt - 1e-9  # exactness sanity
    worst = {}
    for pname, ss in samples.items():
        stats = summarize(ss)
        worst[pname] = stats["max"]
        table2.add_row([pname, int(stats["count"]), stats["mean"], stats["max"]])
    emit("e11b_vs_exact", table2.render())
    # Shape: no packer strays beyond small constants on these sizes.
    assert all(v <= 3.0 for v in worst.values())
