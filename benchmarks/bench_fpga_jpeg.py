"""E12 — the motivating application: JPEG pipelines on a K-column device.

Shape checks:
* DC schedules simulate cleanly on the device model at every K (contiguous
  exclusive column use verified event by event);
* makespan respects both lower bounds and the Theorem 2.3 guarantee;
* wider devices (more columns) never worsen the DC makespan on the same
  pipeline, and utilisation reflects the contention the paper's intro
  describes (DCT stage dominates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound, dc_guarantee
from repro.core.placement import validate_placement
from repro.fpga.device import Device
from repro.fpga.schedule import schedule_from_placement
from repro.fpga.simulator import simulate
from repro.precedence.dc import dc_pack
from repro.precedence.list_schedule import list_schedule
from repro.workloads.jpeg import jpeg_pipeline_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "fpga_jpeg"


def test_e12_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


KS = [8, 16, 32]
TILES = [2, 4, 8]


@pytest.mark.parametrize("K", [16])
def test_e12_pipeline_timing(K):
    dev = Device(K=K)
    inst = jpeg_pipeline_instance(8, dev)
    result = dc_pack(inst)
    validate_placement(inst, result.placement)


def test_e12_jpeg_on_device():
    dev = Device(K=16)
    inst = jpeg_pipeline_instance(4, dev)

    table = Table(
        ["K", "tiles", "n_tasks", "F", "AREA", "dc_makespan", "ls_makespan", "util"],
        title="E12 JPEG pipeline on K-column device",
    )
    for K in KS:
        dev = Device(K=K)
        prev = None
        for tiles in TILES:
            inst = jpeg_pipeline_instance(tiles, dev)
            result = dc_pack(inst)
            validate_placement(inst, result.placement)
            sched = schedule_from_placement(result.placement, dev)
            sched.validate(dag=inst.dag)
            rep = simulate(sched)
            assert abs(rep.makespan - result.height) < 1e-9
            F = critical_path_bound(inst)
            area = area_bound(inst)
            assert result.height >= max(F, area) - 1e-9
            assert result.height <= dc_guarantee(len(inst), area, F) + 1e-7
            ls = list_schedule(inst)
            validate_placement(inst, ls)
            table.add_row(
                [K, tiles, len(inst), F, area, result.height, ls.height,
                 rep.utilisation(K)]
            )
    emit("e12_fpga_jpeg", table.render())
