"""A5 — online policy shoot-out: the price of not knowing the future,
per policy.

E10/A4 established the gap between online first fit and the offline APTAS
on one policy; with the event-driven simulator every registered online
policy (first fit, best-fit column, online shelves) replays the *same*
arrival stream, so the "price of not knowing the future" becomes a curve
per policy rather than a single point.  All heights are normalised by the
fractional optimum ``OPT_f``; every policy is an integral solution, so its
ratio is at least 1, and the offline APTAS should dominate the online
policies as ``n`` grows.

The simulator's serving statistics (queue depth, utilization) are recorded
alongside — the operating-system view the paper's ref [23] motivates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.engine import run
from repro.release.lp import optimal_fractional_height
from repro.sim import simulate_instance
from repro.workloads.releases import bursty_release_instance

from .conftest import bench_quick, emit, emit_reports


BENCH_SPEC = "online_policies"


def test_a5_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


K = 4
POLICIES = ("first_fit", "best_fit_column", "shelf_online")
ONLINE_SPECS = {"first_fit": "online_ff", "best_fit_column": "online_best_fit",
                "shelf_online": "online_shelf"}


def _inst(n, seed=0):
    rng = np.random.default_rng(seed)
    return bursty_release_instance(n, K, rng, n_bursts=3, burst_gap=float(n) / 8.0)


def test_a5_policy_ratios():
    inst0 = _inst(40)

    table = Table(
        ["n", "opt_f", *POLICIES, "aptas", *(f"{p}/opt_f" for p in POLICIES)],
        title=f"A5 online policies vs offline APTAS (K={K})",
    )
    all_reports = []
    for n in (10, 20, 40, 80):
        inst = _inst(n)
        opt_f = optimal_fractional_height(inst)
        heights = {}
        for policy in POLICIES:
            rep = run(inst, ONLINE_SPECS[policy], label=f"n={n}:{policy}")
            assert rep.valid
            # Integral online solutions never beat the fractional optimum.
            assert rep.height >= opt_f - 1e-6
            heights[policy] = rep.height
            all_reports.append(rep)
        rep_off = run(inst, "aptas", params={"eps": 0.9}, label=f"n={n}:aptas")
        assert rep_off.valid and rep_off.height >= opt_f - 1e-6
        all_reports.append(rep_off)
        table.add_row(
            [n, opt_f, *(heights[p] for p in POLICIES), rep_off.height,
             *(heights[p] / opt_f for p in POLICIES)]
        )
    emit("a5_online_policies", table.render())
    emit_reports("a5_online_policies_reports", all_reports,
                 title=f"A5 engine reports (K={K})")


def test_a5_serving_statistics():
    inst0 = _inst(40)

    table = Table(
        ["policy", "n", "makespan", "mean_queue", "max_queue", "utilization"],
        title=f"A5b serving statistics on one bursty stream (K={K})",
    )
    for policy in POLICIES:
        trace = simulate_instance(_inst(40), policy)
        # Utilization is a fraction of the device; queue depth is bounded by n.
        assert 0.0 < trace.mean_utilization <= 1.0
        assert 0 <= trace.max_queue_depth <= trace.n_tasks
        table.add_row(
            [policy, trace.n_tasks, trace.makespan, trace.mean_queue_depth,
             trace.max_queue_depth, trace.mean_utilization]
        )
    emit("a5b_serving_stats", table.render())
