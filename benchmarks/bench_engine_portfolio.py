"""E13 — engine batch/portfolio execution.

Exercises the unified solver engine the way a serving layer would:

* portfolio racing on one instance per variant — the winner must be the
  minimum-height valid entrant, and never worse than the per-variant
  default algorithm (the default is always in the race);
* ``solve_many`` over a mixed instance stream — serial and thread-pool
  runs must produce identical heights (all solvers are deterministic), and
  every report carries a finite wall-time and a consistent ratio
  ``height / combined_lower_bound >= 1``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import portfolio, run, solve_many, variant_of
from repro.workloads.suite import mixed_instance_suite

from .conftest import bench_quick, emit_reports


BENCH_SPEC = "portfolio"


def test_e13_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


JOBS = 4


def _suite(n_instances: int = 12, seed: int = 7):
    return mixed_instance_suite(n_instances, np.random.default_rng(seed))


@pytest.mark.parametrize("variant", ["plain", "precedence", "release"])
def test_e13_portfolio_beats_default(variant):
    inst = next(i for i in _suite() if variant_of(i) == variant)
    result = portfolio(inst, jobs=JOBS)

    assert result.best is not None, "no entrant validated"
    assert result.best.valid
    for r in result.reports:
        if r.valid:
            assert result.best.height <= r.height + 1e-12
    # The per-variant default is always a race entrant, so the portfolio
    # winner can never be worse than the one-call solve() answer.
    default_report = run(inst)
    assert result.best.height <= default_report.height + 1e-12
    emit_reports(
        f"e13_portfolio_{variant}",
        result.reports,
        title=f"E13 portfolio race — {variant} (n={len(inst)})",
        label_header="entrant",
    )


def test_e13_batch_parallel_determinism():
    instances = _suite()
    serial = solve_many(instances)
    parallel = solve_many(instances, jobs=JOBS)

    assert [r.height for r in parallel] == [r.height for r in serial]
    assert [r.algorithm for r in parallel] == [r.algorithm for r in serial]
    for r in parallel:
        assert r.valid
        assert r.wall_time >= 0.0
        assert r.ratio is not None and r.ratio >= 1.0 - 1e-9
    emit_reports(
        "e13_batch_stream",
        parallel,
        title=f"E13 solve_many over {len(instances)} mixed instances (jobs={JOBS})",
        label_header="instance",
    )
