"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment from DESIGN.md's index
(E1..E12).  Conventions:

* each pytest function uses the ``benchmark`` fixture (so the suite runs
  under ``pytest benchmarks/ --benchmark-only``) to time the algorithm
  under study, then *verifies the paper's shape claims* with assertions;
* each experiment emits its series/table through :func:`emit`, which both
  prints it (visible with ``-s``) and appends it to
  ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can be checked
  against a fresh run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n[{experiment}]\n{text}\n"
    print(banner)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")


def emit_reports(experiment: str, reports, title: str = "", **table_kwargs) -> None:
    """Emit a batch of engine ``SolveReport`` objects as one canonical table.

    Harnesses that solve through :func:`repro.engine.run` /
    :func:`repro.engine.solve_many` hand the reports straight here instead
    of re-deriving heights, bounds, ratios and wall-times per benchmark.
    """
    from repro.analysis.report import reports_table

    emit(experiment, reports_table(reports, title=title or experiment, **table_kwargs).render())
