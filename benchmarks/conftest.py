"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment from DESIGN.md's index
(E1..E13, A1..A5).  Conventions:

* the *timing* of each experiment lives in the bench registry
  (:mod:`repro.bench.specs`) — each script opens with a
  :func:`bench_quick` shim that runs its registered spec on the smoke
  sizes, so ``repro bench <name>`` and the pytest script measure the same
  thing; the script body then *verifies the paper's shape claims* with
  assertions (the part a JSON artifact cannot carry);
* each experiment emits its series/table through :func:`emit`, which both
  prints it (visible with ``-s``) and appends it to
  ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can be checked
  against a fresh run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_quick(name: str, repetitions: int = 1) -> dict:
    """Run bench spec ``name`` on its quick sizes; emit and return the artifact.

    The thin shim every ``bench_*.py`` script starts with: timing goes
    through the same registry/runner as ``repro bench``, and the artifact
    dict comes back for shape assertions.
    """
    from repro.bench import artifact_table, get_bench, run_bench

    artifact = run_bench(get_bench(name), quick=True, repetitions=repetitions, warmup=0)
    emit(f"bench_{name}", artifact_table(artifact).render())
    return artifact


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n[{experiment}]\n{text}\n"
    print(banner)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")


def emit_reports(experiment: str, reports, title: str = "", **table_kwargs) -> None:
    """Emit a batch of engine ``SolveReport`` objects as one canonical table.

    Harnesses that solve through :func:`repro.engine.run` /
    :func:`repro.engine.solve_many` hand the reports straight here instead
    of re-deriving heights, bounds, ratios and wall-times per benchmark.
    """
    from repro.analysis.report import reports_table

    emit(experiment, reports_table(reports, title=title or experiment, **table_kwargs).render())
