"""E8 — Lemma 3.3: the configuration LP computes OPT_f and a basic optimal
solution uses at most (W+1)(R+1) distinct configuration occurrences.

Shape checks: support size <= (W+1)(R+1) across K; configuration count
grows quickly with K (the stated exponential dependence); LP height always
dominates the fractional lower bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.release.configurations import enumerate_configurations
from repro.release.lp import solve_fractional
from repro.workloads.releases import staircase_release_instance

from .conftest import bench_quick, emit


BENCH_SPEC = "lp_configs"


def test_e8_bench_spec():
    """Thin shim: the timed sweep lives in the bench registry (`repro bench`)."""
    artifact = bench_quick(BENCH_SPEC)
    assert artifact["points"], "bench spec produced no measurements"


KS = [2, 3, 4, 5, 6]


@pytest.mark.parametrize("K", [4])
def test_e8_lp_solve_time(K):
    rng = np.random.default_rng(41)
    inst = staircase_release_instance(24, K, rng, n_steps=3)
    frac = solve_fractional(inst)
    assert frac.height > 0.0


def test_e8_support_bound_and_config_growth():

    table = Table(
        ["K", "Q(configs)", "W", "R+1", "support", "(W+1)(R+1)", "opt_f"],
        title="E8 Lemma 3.3 configuration LP",
    )
    qs = []
    for K in KS:
        widths = [c / K for c in range(1, K + 1)]
        Q = enumerate_configurations(widths).Q
        qs.append(Q)
        rng = np.random.default_rng(500 + K)
        inst = staircase_release_instance(18, K, rng, n_steps=3)
        sol = solve_fractional(inst)
        sol.verify()
        W = len({r.width for r in inst.rects})
        R1 = len(sol.boundaries)
        support = len(sol.support())
        assert support <= (W + 1) * R1, "Lemma 3.3 support bound violated"
        table.add_row([K, Q, W, R1, support, (W + 1) * R1, sol.height])
    emit("e8_lp_configs", table.render())
    # Shape: configuration count grows super-linearly in K.
    assert qs[-1] > 4 * qs[0]
