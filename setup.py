"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP-660 editable installs (``pip install -e .``) cannot build the editable
wheel.  This shim lets ``python setup.py develop`` / legacy ``pip install
-e .`` work from the pyproject metadata alone.
"""

from setuptools import setup

setup()
